// Unit tests for the ExecGuard resource governor: step accounting,
// recursion depth, the store allocation gauge, deadlines, cancellation,
// and trip stickiness — independent of the evaluator.

#include "core/guard.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "base/limits.h"
#include "xdm/store.h"

namespace xqb {
namespace {

TEST(ExecGuardTest, DefaultLimitsAllowManySteps) {
  ExecGuard guard(ExecLimits{});
  for (int i = 0; i < 100000; ++i) {
    ASSERT_TRUE(guard.Tick());
  }
  EXPECT_FALSE(guard.tripped());
  EXPECT_TRUE(guard.status().ok());
  EXPECT_EQ(guard.steps(), 100000);
}

TEST(ExecGuardTest, UnlimitedModeChargesNothing) {
  ExecGuard guard(ExecLimits::Unlimited());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(guard.Tick());
  }
  // The disabled hot path skips even the step counter.
  EXPECT_EQ(guard.steps(), 0);
}

TEST(ExecGuardTest, StepBudgetTripsExactlyOnceExceeded) {
  ExecLimits limits;
  limits.max_steps = 10000;
  limits.check_interval = 64;
  ExecGuard guard(limits);
  int64_t allowed = 0;
  while (guard.Tick()) {
    ++allowed;
    ASSERT_LE(allowed, limits.max_steps) << "budget never tripped";
  }
  // The check interval clamps to land exactly on the budget boundary.
  EXPECT_EQ(allowed, limits.max_steps);
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExecGuardTest, TripIsSticky) {
  ExecLimits limits;
  limits.max_steps = 100;
  ExecGuard guard(limits);
  while (guard.Tick()) {
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(guard.Tick());
    EXPECT_EQ(guard.TickStatus().code(), StatusCode::kResourceExhausted);
  }
}

TEST(ExecGuardTest, RecursionDepthLimit) {
  ExecLimits limits;
  limits.max_call_depth = 3;
  ExecGuard guard(limits);
  EXPECT_TRUE(guard.EnterCall("f").ok());
  EXPECT_TRUE(guard.EnterCall("f").ok());
  EXPECT_TRUE(guard.EnterCall("f").ok());
  auto status = guard.EnterCall("f");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // An EnterCall trip must also surface through later Ticks so the
  // whole evaluation unwinds, even when no step budget is set.
  EXPECT_FALSE(guard.Tick());
}

TEST(ExecGuardTest, StackBudgetTripsEnterCall) {
  ExecLimits limits;
  limits.max_stack_bytes = 1;  // below any real frame distance
  ExecGuard guard(limits);
  auto status = guard.EnterCall("f");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(guard.Tick());
}

TEST(ExecGuardTest, ExitCallReleasesDepth) {
  ExecLimits limits;
  limits.max_call_depth = 2;
  ExecGuard guard(limits);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(guard.EnterCall("f").ok());
    guard.ExitCall();
  }
  EXPECT_FALSE(guard.tripped());
}

TEST(ExecGuardTest, StoreGaugeTripsGrowthBudget) {
  ExecLimits limits;
  limits.max_store_growth = 5;
  ExecGuard guard(limits);
  Store store;
  store.set_allocation_gauge(guard.gauge());
  for (int i = 0; i < 5; ++i) {
    store.NewElement("e");
    EXPECT_TRUE(guard.Tick()) << "tripped after " << i + 1 << " nodes";
  }
  store.NewElement("e");
  EXPECT_FALSE(guard.Tick());
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
  store.set_allocation_gauge(nullptr);
}

TEST(ExecGuardTest, DeadlineTrips) {
  ExecLimits limits = ExecLimits::Unlimited();
  limits.deadline_ms = 20;
  limits.check_interval = 16;
  ExecGuard guard(limits);
  EXPECT_TRUE(guard.Tick());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  bool tripped = false;
  // At most check_interval ticks until the deadline is observed.
  for (int i = 0; i < 64 && !tripped; ++i) tripped = !guard.Tick();
  ASSERT_TRUE(tripped);
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExecGuardTest, CancellationTokenTrips) {
  auto token = std::make_shared<CancellationToken>();
  ExecLimits limits = ExecLimits::Unlimited();
  limits.check_interval = 16;
  ExecGuard guard(limits, token);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(guard.Tick());
  }
  token->Cancel();
  bool tripped = false;
  for (int i = 0; i < 64 && !tripped; ++i) tripped = !guard.Tick();
  ASSERT_TRUE(tripped);
  EXPECT_EQ(guard.status().code(), StatusCode::kCancelled);
}

TEST(ExecGuardTest, TokenResetAllowsReuseAcrossRuns) {
  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  EXPECT_TRUE(token->cancelled());
  token->Reset();
  EXPECT_FALSE(token->cancelled());
  ExecGuard guard(ExecLimits::Unlimited(), token);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(guard.Tick());
  }
}

}  // namespace
}  // namespace xqb
