// Tests for the public Engine facade: prepared-query reuse, document
// and variable registration, serialization options, plan observability,
// statistics and garbage collection.

#include <gtest/gtest.h>

#include "base/string_util.h"
#include "core/engine.h"

namespace xqb {
namespace {

TEST(EngineTest, ExecuteIsPrepareThenRun) {
  Engine engine;
  auto prepared = engine.Prepare("1 + 1");
  ASSERT_TRUE(prepared.ok());
  auto r1 = engine.Run(*prepared);
  auto r2 = engine.Execute("1 + 1");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(engine.Serialize(*r1), engine.Serialize(*r2));
}

TEST(EngineTest, PreparedQueryReusesAcrossStoreChanges) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<r/>").ok());
  auto grow = engine.Prepare("snap insert { <e/> } into { doc('d')/r }");
  ASSERT_TRUE(grow.ok());
  auto count = engine.Prepare("count(doc('d')/r/e)");
  ASSERT_TRUE(count.ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(engine.Run(*grow).ok());
    auto n = engine.Run(*count);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(engine.Serialize(*n), std::to_string(i));
  }
}

TEST(EngineTest, DocumentReRegistrationReplaces) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<one/>").ok());
  auto r = engine.Execute("name(doc('d')/*)");
  EXPECT_EQ(engine.Serialize(*r), "one");
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<two/>").ok());
  r = engine.Execute("name(doc('d')/*)");
  EXPECT_EQ(engine.Serialize(*r), "two");
}

TEST(EngineTest, BindVariableSequenceAndNode) {
  Engine engine;
  engine.BindVariable("nums", Sequence{Item::Integer(1), Item::Integer(2)});
  auto r = engine.Execute("sum($nums)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(engine.Serialize(*r), "3");
  NodeId node = engine.store().NewElement("bound");
  engine.BindVariable("n", node);
  r = engine.Execute("name($n)");
  EXPECT_EQ(engine.Serialize(*r), "bound");
}

TEST(EngineTest, SerializeIndentOption) {
  Engine engine;
  auto r = engine.Execute("<a><b/><c/></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(engine.Serialize(*r), "<a><b/><c/></a>");
  EXPECT_EQ(engine.Serialize(*r, /*indent=*/true),
            "<a>\n  <b/>\n  <c/>\n</a>");
}

TEST(EngineTest, LastPlanExposedOnlyForAlgebraRuns) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<r><a/></r>").ok());
  ExecOptions interpreted;
  ASSERT_TRUE(engine.Execute("for $x in doc('d')//a return $x",
                             interpreted)
                  .ok());
  EXPECT_FALSE(engine.last_used_algebra());
  EXPECT_TRUE(engine.last_plan().empty());
  ExecOptions optimized;
  optimized.optimize = true;
  ASSERT_TRUE(
      engine.Execute("for $x in doc('d')//a return $x", optimized).ok());
  EXPECT_TRUE(engine.last_used_algebra());
  EXPECT_TRUE(Contains(engine.last_plan(), "MapToItem"));
  EXPECT_TRUE(Contains(engine.last_plan(), "Snap {"));
}

TEST(EngineTest, NonFlworFallsBackUnderOptimize) {
  Engine engine;
  ExecOptions optimized;
  optimized.optimize = true;
  auto r = engine.Execute("1 + 1", optimized);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(engine.last_used_algebra());
  EXPECT_EQ(engine.Serialize(*r), "2");
}

TEST(EngineTest, StatisticsTrackSnapsAndUpdates) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<r/>").ok());
  ASSERT_TRUE(engine
                  .Execute("snap { insert {<a/>} into {doc('d')/r}, "
                           "snap insert {<b/>} into {doc('d')/r} }")
                  .ok());
  // Inner snap + outer snap + implicit top-level = 3; 2 update requests.
  EXPECT_EQ(engine.last_snaps_applied(), 3);
  EXPECT_EQ(engine.last_updates_applied(), 2);
}

TEST(EngineTest, DefaultSnapModeOption) {
  // A conflicting Δ under the engine-wide conflict-detection default.
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<r/>").ok());
  ExecOptions options;
  options.default_snap_mode = ApplyMode::kConflictDetection;
  auto r = engine.Execute(
      "let $x := doc('d')/r return "
      "(insert {<a/>} into {$x}, insert {<b/>} into {$x})",
      options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConflictError);
}

TEST(EngineTest, GarbageCollectionKeepsDocumentsAndBindings) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<r><a/></r>").ok());
  NodeId pinned = engine.store().NewElement("pinned");
  engine.BindVariable("p", pinned);
  ASSERT_TRUE(engine.Execute("for $i in 1 to 100 return <junk/>").ok());
  size_t freed = engine.CollectGarbage();
  EXPECT_GE(freed, 100u);
  EXPECT_TRUE(engine.store().IsValid(pinned));
  auto r = engine.Execute("count(doc('d')/r/a), name($p)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(engine.Serialize(*r), "1 pinned");
}

TEST(EngineTest, EnginesAreIndependent) {
  Engine a;
  Engine b;
  ASSERT_TRUE(a.LoadDocumentFromString("d", "<in-a/>").ok());
  ASSERT_TRUE(b.LoadDocumentFromString("d", "<in-b/>").ok());
  ASSERT_TRUE(a.Execute("snap rename { doc('d')/* } to { \"x\" }").ok());
  auto rb = b.Execute("name(doc('d')/*)");
  EXPECT_EQ(b.Serialize(*rb), "in-b");
}

TEST(EngineTest, ErrorsCarryCategoriesThroughTheFacade) {
  Engine engine;
  EXPECT_EQ(engine.Execute("1 +").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(engine.Execute("$x").status().code(),
            StatusCode::kStaticError);
  EXPECT_EQ(engine.Execute("1 idiv 0").status().code(),
            StatusCode::kDynamicError);
  EXPECT_EQ(engine.Execute("(1,2) eq 1").status().code(),
            StatusCode::kTypeError);
}

}  // namespace
}  // namespace xqb
