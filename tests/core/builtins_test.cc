// Unit tests for the builtin function library, one block per F&O group.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace xqb {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = engine_.LoadDocumentFromString(
        "d", "<r><a>1</a><b x=\"7\">two</b><a>3</a></r>");
    ASSERT_TRUE(doc.ok());
  }

  std::string Eval(const std::string& query) {
    auto result = engine_.Execute(query);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return engine_.Serialize(*result);
  }

  Status EvalStatus(const std::string& query) {
    auto result = engine_.Execute(query);
    return result.ok() ? Status::OK() : result.status();
  }

  Engine engine_;
};

TEST_F(BuiltinsTest, CountEmptyExists) {
  EXPECT_EQ(Eval("count(())"), "0");
  EXPECT_EQ(Eval("count((1,2,3))"), "3");
  EXPECT_EQ(Eval("count(doc('d')//a)"), "2");
  EXPECT_EQ(Eval("empty(())"), "true");
  EXPECT_EQ(Eval("empty((1))"), "false");
  EXPECT_EQ(Eval("exists(())"), "false");
  EXPECT_EQ(Eval("exists(doc('d')//b)"), "true");
}

TEST_F(BuiltinsTest, BooleanFamily) {
  EXPECT_EQ(Eval("true()"), "true");
  EXPECT_EQ(Eval("false()"), "false");
  EXPECT_EQ(Eval("not(true())"), "false");
  EXPECT_EQ(Eval("not(())"), "true");
  EXPECT_EQ(Eval("boolean(\"x\")"), "true");
  EXPECT_EQ(Eval("boolean(0)"), "false");
}

TEST_F(BuiltinsTest, StringBasics) {
  EXPECT_EQ(Eval("string(42)"), "42");
  EXPECT_EQ(Eval("string(doc('d')//b)"), "two");
  EXPECT_EQ(Eval("string(())"), "");
  EXPECT_EQ(Eval("string-length(\"hello\")"), "5");
  EXPECT_EQ(Eval("string-length(())"), "0");
  EXPECT_EQ(Eval("normalize-space(\"  a   b \")"), "a b");
  EXPECT_EQ(Eval("upper-case(\"MiXeD\")"), "MIXED");
  EXPECT_EQ(Eval("lower-case(\"MiXeD\")"), "mixed");
}

TEST_F(BuiltinsTest, StringContext) {
  EXPECT_EQ(Eval("doc('d')//a[string(.) = \"3\"]/text()"), "3");
  EXPECT_EQ(Eval("(\"x\",\"yy\")[string-length() = 2]"), "yy");
}

TEST_F(BuiltinsTest, ConcatAndJoin) {
  EXPECT_EQ(Eval("concat(\"a\", \"b\", \"c\")"), "abc");
  EXPECT_EQ(Eval("concat(\"n=\", 4)"), "n=4");
  EXPECT_EQ(Eval("concat(\"x\", ())"), "x");
  EXPECT_EQ(EvalStatus("concat(\"one\")").code(), StatusCode::kStaticError);
  EXPECT_EQ(Eval("string-join((\"a\",\"b\",\"c\"), \"-\")"), "a-b-c");
  EXPECT_EQ(Eval("string-join((), \"-\")"), "");
  EXPECT_EQ(Eval("string-join((\"a\",\"b\"))"), "ab");
}

TEST_F(BuiltinsTest, SubstringFamily) {
  EXPECT_EQ(Eval("substring(\"hello\", 2)"), "ello");
  EXPECT_EQ(Eval("substring(\"hello\", 2, 3)"), "ell");
  EXPECT_EQ(Eval("substring(\"hello\", 0)"), "hello");
  EXPECT_EQ(Eval("substring(\"hello\", 1.5, 2.6)"), "ell");
  EXPECT_EQ(Eval("substring-before(\"a=b\", \"=\")"), "a");
  EXPECT_EQ(Eval("substring-after(\"a=b\", \"=\")"), "b");
  EXPECT_EQ(Eval("substring-before(\"ab\", \"x\")"), "");
  EXPECT_EQ(Eval("contains(\"abc\", \"b\")"), "true");
  EXPECT_EQ(Eval("starts-with(\"abc\", \"ab\")"), "true");
  EXPECT_EQ(Eval("ends-with(\"abc\", \"bc\")"), "true");
  EXPECT_EQ(Eval("contains(\"abc\", \"\")"), "true");
}

TEST_F(BuiltinsTest, Translate) {
  EXPECT_EQ(Eval("translate(\"bar\", \"abc\", \"ABC\")"), "BAr");
  EXPECT_EQ(Eval("translate(\"--aaa--\", \"a-\", \"A\")"), "AAA");
}

TEST_F(BuiltinsTest, Codepoints) {
  EXPECT_EQ(Eval("string-to-codepoints(\"AB\")"), "65 66");
  EXPECT_EQ(Eval("codepoints-to-string((72, 105))"), "Hi");
}

TEST_F(BuiltinsTest, NumberAndData) {
  EXPECT_EQ(Eval("number(\"3.5\")"), "3.5");
  EXPECT_EQ(Eval("number(\"nope\")"), "NaN");
  EXPECT_EQ(Eval("number(())"), "NaN");
  EXPECT_EQ(Eval("data(doc('d')//a)"), "1 3");
  EXPECT_EQ(Eval("count(data((1, \"a\")))"), "2");
}

TEST_F(BuiltinsTest, Aggregates) {
  EXPECT_EQ(Eval("sum((1, 2, 3))"), "6");
  EXPECT_EQ(Eval("sum(())"), "0");
  EXPECT_EQ(Eval("sum((), 99)"), "99");
  EXPECT_EQ(Eval("sum((1.5, 2.5))"), "4");
  EXPECT_EQ(Eval("avg((2, 4))"), "3");
  EXPECT_EQ(Eval("avg(())"), "");
  EXPECT_EQ(Eval("min((3, 1, 2))"), "1");
  EXPECT_EQ(Eval("max((3, 1, 2))"), "3");
  EXPECT_EQ(Eval("min((\"b\", \"a\"))"), "a");
  EXPECT_EQ(Eval("max(doc('d')//b/@x)"), "7");
}

TEST_F(BuiltinsTest, NumericRounding) {
  EXPECT_EQ(Eval("abs(-5)"), "5");
  EXPECT_EQ(Eval("abs(-2.5)"), "2.5");
  EXPECT_EQ(Eval("floor(2.7)"), "2");
  EXPECT_EQ(Eval("ceiling(2.2)"), "3");
  EXPECT_EQ(Eval("round(2.5)"), "3");
  EXPECT_EQ(Eval("round(-2.5)"), "-2");  // Round half up.
  EXPECT_EQ(Eval("floor(())"), "");
}

TEST_F(BuiltinsTest, SequenceFunctions) {
  EXPECT_EQ(Eval("distinct-values((1, 2, 1, \"a\", \"a\", 2.0))"),
            "1 2 a");
  EXPECT_EQ(Eval("reverse((1, 2, 3))"), "3 2 1");
  EXPECT_EQ(Eval("reverse(())"), "");
  EXPECT_EQ(Eval("subsequence((1,2,3,4), 2)"), "2 3 4");
  EXPECT_EQ(Eval("subsequence((1,2,3,4), 2, 2)"), "2 3");
  EXPECT_EQ(Eval("index-of((10, 20, 10), 10)"), "1 3");
  EXPECT_EQ(Eval("index-of((1,2), 9)"), "");
  EXPECT_EQ(Eval("insert-before((1,3), 2, 2)"), "1 2 3");
  EXPECT_EQ(Eval("insert-before((1,2), 9, 3)"), "1 2 3");
  EXPECT_EQ(Eval("remove((1,2,3), 2)"), "1 3");
  EXPECT_EQ(Eval("remove((1,2,3), 9)"), "1 2 3");
}

TEST_F(BuiltinsTest, CardinalityAssertions) {
  EXPECT_EQ(Eval("zero-or-one(())"), "");
  EXPECT_EQ(Eval("zero-or-one((1))"), "1");
  EXPECT_EQ(EvalStatus("zero-or-one((1,2))").code(),
            StatusCode::kDynamicError);
  EXPECT_EQ(Eval("exactly-one((5))"), "5");
  EXPECT_EQ(EvalStatus("exactly-one(())").code(),
            StatusCode::kDynamicError);
  EXPECT_EQ(Eval("one-or-more((1,2))"), "1 2");
  EXPECT_EQ(EvalStatus("one-or-more(())").code(),
            StatusCode::kDynamicError);
}

TEST_F(BuiltinsTest, NodeFunctions) {
  EXPECT_EQ(Eval("name(doc('d')//b)"), "b");
  EXPECT_EQ(Eval("name(())"), "");
  EXPECT_EQ(Eval("local-name(doc('d')//b)"), "b");
  EXPECT_EQ(Eval("doc('d')//b/name()"), "b");
  EXPECT_EQ(Eval("name(root(doc('d')//b)/r)"), "r");
  EXPECT_EQ(Eval("node-kind(doc('d')//b/@x)"), "attribute");
  EXPECT_EQ(Eval("node-kind(doc('d'))"), "document");
}

TEST_F(BuiltinsTest, DeepEqual) {
  EXPECT_EQ(Eval("deep-equal(<a x=\"1\"><b/></a>, <a x=\"1\"><b/></a>)"),
            "true");
  EXPECT_EQ(Eval("deep-equal(<a x=\"1\"/>, <a x=\"2\"/>)"), "false");
  EXPECT_EQ(Eval("deep-equal(<a><b/></a>, <a><c/></a>)"), "false");
  EXPECT_EQ(Eval("deep-equal((1, 2), (1, 2))"), "true");
  EXPECT_EQ(Eval("deep-equal((1, 2), (1))"), "false");
  EXPECT_EQ(Eval("deep-equal(1, 1.0)"), "true");
  // Attribute order is insignificant.
  EXPECT_EQ(Eval("deep-equal(<a x=\"1\" y=\"2\"/>, <a y=\"2\" x=\"1\"/>)"),
            "true");
}

TEST_F(BuiltinsTest, DocAndError) {
  EXPECT_EQ(Eval("count(doc('d'))"), "1");
  EXPECT_EQ(EvalStatus("doc('missing')").code(),
            StatusCode::kDynamicError);
  EXPECT_EQ(EvalStatus("error()").code(), StatusCode::kDynamicError);
  Status st = EvalStatus("error(\"my-code\", \"my description\")");
  EXPECT_EQ(st.code(), StatusCode::kDynamicError);
  EXPECT_TRUE(st.message().find("my-code") != std::string::npos);
  EXPECT_TRUE(st.message().find("my description") != std::string::npos);
}

TEST_F(BuiltinsTest, FnPrefixAccepted) {
  EXPECT_EQ(Eval("fn:count((1,2))"), "2");
  EXPECT_EQ(Eval("fn:string-join((\"a\",\"b\"), \",\")"), "a,b");
}

TEST_F(BuiltinsTest, PositionLastRequireFocus) {
  EXPECT_EQ(EvalStatus("position()").code(), StatusCode::kDynamicError);
  EXPECT_EQ(EvalStatus("last()").code(), StatusCode::kDynamicError);
  EXPECT_EQ(Eval("(7, 8, 9)[position() = last() - 1]"), "8");
}

}  // namespace
}  // namespace xqb
