// E8: the three update-application semantics of Section 3.2 — ordered,
// nondeterministic and conflict-detection — including the conflict
// rules R1–R4 and a seed-sweep property: on a conflict-free Δ, every
// permutation produces the same store.

#include <gtest/gtest.h>

#include "core/update.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace xqb {
namespace {

class ApplySemanticsTest : public ::testing::Test {
 protected:
  /// Builds <root><a/><b/><c/></root> and remembers the node ids.
  void SetUp() override {
    auto doc = ParseXmlDocument(&store_, "<root><a/><b/><c/></root>");
    ASSERT_TRUE(doc.ok());
    root_ = store_.ChildrenOf(*doc)[0];
    a_ = store_.ChildrenOf(root_)[0];
    b_ = store_.ChildrenOf(root_)[1];
    c_ = store_.ChildrenOf(root_)[2];
  }

  std::string Serialized() { return SerializeNode(store_, root_); }

  Store store_;
  NodeId root_ = kInvalidNode;
  NodeId a_ = kInvalidNode;
  NodeId b_ = kInvalidNode;
  NodeId c_ = kInvalidNode;
};

TEST_F(ApplySemanticsTest, OrderedAppliesInDeltaOrder) {
  UpdateList delta;
  delta.Append(UpdateRequest::InsertInto({store_.NewElement("x")}, root_,
                                         /*as_first=*/false));
  delta.Append(UpdateRequest::InsertInto({store_.NewElement("y")}, root_,
                                         /*as_first=*/false));
  ASSERT_TRUE(ApplyUpdateList(&store_, delta, ApplyMode::kOrdered).ok());
  EXPECT_EQ(Serialized(), "<root><a/><b/><c/><x/><y/></root>");
}

TEST_F(ApplySemanticsTest, OrderedStopsAtFirstFailure) {
  NodeId x = store_.NewElement("x");
  UpdateList delta;
  delta.Append(UpdateRequest::InsertInto({x}, root_, false));
  // Second insert of the same payload fails: it now has a parent.
  delta.Append(UpdateRequest::InsertInto({x}, root_, false));
  Status st = ApplyUpdateList(&store_, delta, ApplyMode::kOrdered);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUpdateError);
  // The first request did apply (no atomicity requirement).
  EXPECT_EQ(store_.ChildrenOf(root_).size(), 4u);
}

TEST_F(ApplySemanticsTest, NondeterministicOrderDependsOnSeed) {
  // Two as-last inserts: the seed decides which lands first. Across a
  // seed sweep both orders must occur.
  bool saw_xy = false;
  bool saw_yx = false;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    Store store;
    auto doc = ParseXmlDocument(&store, "<root/>");
    ASSERT_TRUE(doc.ok());
    NodeId root = store.ChildrenOf(*doc)[0];
    UpdateList delta;
    delta.Append(
        UpdateRequest::InsertInto({store.NewElement("x")}, root, false));
    delta.Append(
        UpdateRequest::InsertInto({store.NewElement("y")}, root, false));
    ASSERT_TRUE(
        ApplyUpdateList(&store, delta, ApplyMode::kNondeterministic, seed)
            .ok());
    std::string out = SerializeNode(store, root);
    if (out == "<root><x/><y/></root>") saw_xy = true;
    if (out == "<root><y/><x/></root>") saw_yx = true;
  }
  EXPECT_TRUE(saw_xy);
  EXPECT_TRUE(saw_yx);
}

TEST_F(ApplySemanticsTest, NondeterministicIsDeterministicPerSeed) {
  auto run = [&](uint64_t seed) {
    Store store;
    auto doc = ParseXmlDocument(&store, "<root/>");
    NodeId root = store.ChildrenOf(*doc)[0];
    UpdateList delta;
    for (int i = 0; i < 5; ++i) {
      delta.Append(UpdateRequest::InsertInto(
          {store.NewElement("e" + std::to_string(i))}, root, false));
    }
    EXPECT_TRUE(
        ApplyUpdateList(&store, delta, ApplyMode::kNondeterministic, seed)
            .ok());
    return SerializeNode(store, root);
  };
  EXPECT_EQ(run(7), run(7));
}

TEST_F(ApplySemanticsTest, ConflictDetectionAcceptsDisjointUpdates) {
  UpdateList delta;
  delta.Append(UpdateRequest::Rename(a_, store_.names().Intern("a2")));
  delta.Append(UpdateRequest::Delete(b_));
  delta.Append(UpdateRequest::InsertInto({store_.NewElement("x")}, c_,
                                         /*as_first=*/true));
  ASSERT_TRUE(
      ApplyUpdateList(&store_, delta, ApplyMode::kConflictDetection).ok());
  EXPECT_EQ(Serialized(), "<root><a2/><c><x/></c></root>");
}

TEST_F(ApplySemanticsTest, R1TwoRenamesSameNodeDifferentNames) {
  UpdateList delta;
  delta.Append(UpdateRequest::Rename(a_, store_.names().Intern("x")));
  delta.Append(UpdateRequest::Rename(a_, store_.names().Intern("y")));
  Status st = ApplyUpdateList(&store_, delta, ApplyMode::kConflictDetection);
  EXPECT_EQ(st.code(), StatusCode::kConflictError);
}

TEST_F(ApplySemanticsTest, R1SameRenameTwiceCommutes) {
  QNameId name = store_.names().Intern("same");
  UpdateList delta;
  delta.Append(UpdateRequest::Rename(a_, name));
  delta.Append(UpdateRequest::Rename(a_, name));
  EXPECT_TRUE(
      ApplyUpdateList(&store_, delta, ApplyMode::kConflictDetection).ok());
}

TEST_F(ApplySemanticsTest, R2NodeInsertedTwice) {
  NodeId x = store_.NewElement("x");
  UpdateList delta;
  delta.Append(UpdateRequest::InsertInto({x}, a_, false));
  delta.Append(UpdateRequest::InsertInto({x}, b_, false));
  EXPECT_EQ(
      ApplyUpdateList(&store_, delta, ApplyMode::kConflictDetection).code(),
      StatusCode::kConflictError);
}

TEST_F(ApplySemanticsTest, R2InsertAndDeleteSameNode) {
  NodeId x = store_.NewElement("x");
  for (bool delete_first : {false, true}) {
    UpdateList delta;
    if (delete_first) delta.Append(UpdateRequest::Delete(x));
    delta.Append(UpdateRequest::InsertInto({x}, a_, false));
    if (!delete_first) delta.Append(UpdateRequest::Delete(x));
    EXPECT_EQ(ApplyUpdateList(&store_, delta, ApplyMode::kConflictDetection)
                  .code(),
              StatusCode::kConflictError)
        << "delete_first=" << delete_first;
  }
}

TEST_F(ApplySemanticsTest, TwoDeletesCommute) {
  UpdateList delta;
  delta.Append(UpdateRequest::Delete(a_));
  delta.Append(UpdateRequest::Delete(a_));
  EXPECT_TRUE(
      ApplyUpdateList(&store_, delta, ApplyMode::kConflictDetection).ok());
  EXPECT_EQ(Serialized(), "<root><b/><c/></root>");
}

TEST_F(ApplySemanticsTest, R3TwoInsertsSameSlot) {
  UpdateList delta;
  delta.Append(
      UpdateRequest::InsertInto({store_.NewElement("x")}, root_, false));
  delta.Append(
      UpdateRequest::InsertInto({store_.NewElement("y")}, root_, false));
  EXPECT_EQ(
      ApplyUpdateList(&store_, delta, ApplyMode::kConflictDetection).code(),
      StatusCode::kConflictError);
}

TEST_F(ApplySemanticsTest, R3DifferentSlotsOfSameParentCommute) {
  // as-first and as-last of the same parent are distinct slots.
  UpdateList delta;
  delta.Append(
      UpdateRequest::InsertInto({store_.NewElement("x")}, root_, true));
  delta.Append(
      UpdateRequest::InsertInto({store_.NewElement("y")}, root_, false));
  ASSERT_TRUE(
      ApplyUpdateList(&store_, delta, ApplyMode::kConflictDetection).ok());
  EXPECT_EQ(Serialized(), "<root><x/><a/><b/><c/><y/></root>");
}

TEST_F(ApplySemanticsTest, R3BeforeAndAfterSameSiblingCommute) {
  UpdateList delta;
  delta.Append(
      UpdateRequest::InsertAdjacent({store_.NewElement("x")}, b_, true));
  delta.Append(
      UpdateRequest::InsertAdjacent({store_.NewElement("y")}, b_, false));
  ASSERT_TRUE(
      ApplyUpdateList(&store_, delta, ApplyMode::kConflictDetection).ok());
  EXPECT_EQ(Serialized(), "<root><a/><x/><b/><y/><c/></root>");
}

TEST_F(ApplySemanticsTest, R3AttributeOnlyInsertsCommute) {
  // Attribute lists are unordered: with store-aware verification, two
  // attribute-only inserts into the same element pass (refined R3).
  UpdateList delta;
  delta.Append(UpdateRequest::InsertInto({store_.NewAttribute("x", "1")},
                                         a_, /*as_first=*/false));
  delta.Append(UpdateRequest::InsertInto({store_.NewAttribute("y", "2")},
                                         a_, /*as_first=*/false));
  EXPECT_TRUE(VerifyConflictFree(delta.Flatten(), &store_).ok());
  // Without a store the rule stays conservative.
  EXPECT_EQ(VerifyConflictFree(delta.Flatten()).code(),
            StatusCode::kConflictError);
  ASSERT_TRUE(
      ApplyUpdateList(&store_, delta, ApplyMode::kConflictDetection).ok());
  EXPECT_EQ(Serialized(), "<root><a x=\"1\" y=\"2\"/><b/><c/></root>");
}

TEST_F(ApplySemanticsTest, R3MixedPayloadStillConflicts) {
  UpdateList delta;
  delta.Append(UpdateRequest::InsertInto({store_.NewAttribute("x", "1")},
                                         a_, false));
  delta.Append(UpdateRequest::InsertInto(
      {store_.NewAttribute("y", "2"), store_.NewElement("child")}, a_,
      false));
  EXPECT_EQ(VerifyConflictFree(delta.Flatten(), &store_).code(),
            StatusCode::kConflictError);
}

TEST_F(ApplySemanticsTest, R4InsertAnchoredAtDeletedNode) {
  UpdateList delta;
  delta.Append(
      UpdateRequest::InsertAdjacent({store_.NewElement("x")}, b_, false));
  delta.Append(UpdateRequest::Delete(b_));
  EXPECT_EQ(
      ApplyUpdateList(&store_, delta, ApplyMode::kConflictDetection).code(),
      StatusCode::kConflictError);
}

TEST_F(ApplySemanticsTest, InsertIntoDeletedParentCommutes) {
  // Detaching the parent does not invalidate an insert into it: the
  // children list exists either way.
  UpdateList delta;
  delta.Append(
      UpdateRequest::InsertInto({store_.NewElement("x")}, b_, false));
  delta.Append(UpdateRequest::Delete(b_));
  EXPECT_TRUE(
      ApplyUpdateList(&store_, delta, ApplyMode::kConflictDetection).ok());
  EXPECT_EQ(Serialized(), "<root><a/><c/></root>");
  EXPECT_EQ(SerializeNode(store_, b_), "<b><x/></b>");
}

// ---- Permutation-invariance property ----

class PermutationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PermutationPropertyTest, ConflictFreeDeltaIsOrderInsensitive) {
  // Build a conflict-free Δ (distinct targets/slots), apply it ordered
  // and nondeterministically under the sweep seed: stores must agree.
  auto build = [](Store* store, UpdateList* delta) {
    auto doc = ParseXmlDocument(
        store, "<root><a><k/></a><b/><c/><d/><e/></root>");
    ASSERT_TRUE(doc.ok());
    NodeId root = store->ChildrenOf(*doc)[0];
    const auto& kids = store->ChildrenOf(root);
    NodeId a = kids[0], b = kids[1], c = kids[2], d = kids[3], e = kids[4];
    delta->Append(UpdateRequest::Rename(a, store->names().Intern("a2")));
    delta->Append(UpdateRequest::Delete(b));
    delta->Append(
        UpdateRequest::InsertInto({store->NewElement("in_c")}, c, false));
    delta->Append(
        UpdateRequest::InsertInto({store->NewElement("in_d")}, d, true));
    delta->Append(
        UpdateRequest::InsertAdjacent({store->NewElement("before_e")}, e,
                                      true));
    delta->Append(UpdateRequest::Rename(store->ChildrenOf(a)[0],
                                        store->names().Intern("k2")));
  };
  Store ordered_store;
  UpdateList ordered_delta;
  build(&ordered_store, &ordered_delta);
  ASSERT_TRUE(VerifyConflictFree(ordered_delta.Flatten()).ok());
  ASSERT_TRUE(
      ApplyUpdateList(&ordered_store, ordered_delta, ApplyMode::kOrdered)
          .ok());

  Store shuffled_store;
  UpdateList shuffled_delta;
  build(&shuffled_store, &shuffled_delta);
  ASSERT_TRUE(ApplyUpdateList(&shuffled_store, shuffled_delta,
                              ApplyMode::kNondeterministic, GetParam())
                  .ok());

  NodeId r1 = ordered_store.RootOf(1);
  NodeId r2 = shuffled_store.RootOf(1);
  EXPECT_EQ(SerializeNode(ordered_store, r1),
            SerializeNode(shuffled_store, r2));
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, PermutationPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace xqb
