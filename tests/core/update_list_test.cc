// E9: the update-list rope (Section 4.1's "specialized tree structure")
// — O(1) concat, order-preserving flatten, and the update request
// representation.

#include <gtest/gtest.h>

#include "core/update.h"

namespace xqb {
namespace {

UpdateRequest Del(NodeId n) { return UpdateRequest::Delete(n); }

std::vector<NodeId> TargetsOf(const UpdateList& list) {
  std::vector<NodeId> out;
  for (const UpdateRequest* r : list.Flatten()) out.push_back(r->target);
  return out;
}

TEST(UpdateList, EmptyByDefault) {
  UpdateList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_TRUE(list.Flatten().empty());
}

TEST(UpdateList, SingleAndAppend) {
  UpdateList list = UpdateList::Single(Del(1));
  EXPECT_EQ(list.size(), 1u);
  list.Append(Del(2));
  list.Append(Del(3));
  EXPECT_EQ(TargetsOf(list), (std::vector<NodeId>{1, 2, 3}));
}

TEST(UpdateList, ConcatPreservesOrder) {
  UpdateList a;
  a.Append(Del(1));
  a.Append(Del(2));
  UpdateList b;
  b.Append(Del(3));
  b.Append(Del(4));
  UpdateList joined = UpdateList::Concat(a, b);
  EXPECT_EQ(joined.size(), 4u);
  EXPECT_EQ(TargetsOf(joined), (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(UpdateList, ConcatWithEmptySides) {
  UpdateList a;
  a.Append(Del(1));
  EXPECT_EQ(TargetsOf(UpdateList::Concat(a, UpdateList())),
            (std::vector<NodeId>{1}));
  EXPECT_EQ(TargetsOf(UpdateList::Concat(UpdateList(), a)),
            (std::vector<NodeId>{1}));
  EXPECT_TRUE(UpdateList::Concat(UpdateList(), UpdateList()).empty());
}

TEST(UpdateList, SharingIsSafe) {
  // The rope is immutable: appending to a copy must not disturb the
  // original (snap scopes share prefixes).
  UpdateList a;
  a.Append(Del(1));
  UpdateList b = a;
  b.Append(Del(2));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(UpdateList, DeepLeftChainFlattenIsIterative) {
  // 100k appends produce a deep left-leaning tree; Flatten must not
  // recurse (stack safety).
  UpdateList list;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    list.Append(Del(static_cast<NodeId>(i)));
  }
  std::vector<const UpdateRequest*> flat = list.Flatten();
  ASSERT_EQ(flat.size(), static_cast<size_t>(kN));
  EXPECT_EQ(flat.front()->target, 0u);
  EXPECT_EQ(flat.back()->target, static_cast<NodeId>(kN - 1));
}

TEST(UpdateList, TreeShapedConcatOrder) {
  // ((1,2),(3,(4,5))) flattens left-to-right regardless of shape.
  UpdateList l12 = UpdateList::Concat(UpdateList::Single(Del(1)),
                                      UpdateList::Single(Del(2)));
  UpdateList l45 = UpdateList::Concat(UpdateList::Single(Del(4)),
                                      UpdateList::Single(Del(5)));
  UpdateList l345 = UpdateList::Concat(UpdateList::Single(Del(3)), l45);
  UpdateList all = UpdateList::Concat(l12, l345);
  EXPECT_EQ(TargetsOf(all), (std::vector<NodeId>{1, 2, 3, 4, 5}));
}

TEST(UpdateList, CheckWellFormedHoldsAcrossRopeShapes) {
  // The rope auditor (docs/ROBUSTNESS.md §3) must accept every shape
  // the public API can build.
  EXPECT_TRUE(UpdateList().CheckWellFormed().ok());
  EXPECT_TRUE(UpdateList::Single(Del(1)).CheckWellFormed().ok());

  UpdateList appended;
  for (NodeId i = 0; i < 50; ++i) appended.Append(Del(i));
  EXPECT_TRUE(appended.CheckWellFormed().ok());

  UpdateList l12 = UpdateList::Concat(UpdateList::Single(Del(1)),
                                      UpdateList::Single(Del(2)));
  UpdateList tree = UpdateList::Concat(l12, appended);
  EXPECT_TRUE(tree.CheckWellFormed().ok());
  EXPECT_TRUE(UpdateList::Concat(tree, UpdateList()).CheckWellFormed().ok());

  // Sharing a prefix must keep both ropes well-formed.
  UpdateList shared = tree;
  shared.Append(Del(99));
  EXPECT_TRUE(tree.CheckWellFormed().ok());
  EXPECT_TRUE(shared.CheckWellFormed().ok());
}

TEST(UpdateRequest, DebugStrings) {
  EXPECT_EQ(Del(7).DebugString(), "delete(7)");
  EXPECT_EQ(UpdateRequest::Rename(3, 9).DebugString(), "rename(3,9)");
  EXPECT_EQ(UpdateRequest::InsertInto({1, 2}, 5, false).DebugString(),
            "insert([1,2],last:5)");
  EXPECT_EQ(UpdateRequest::InsertInto({1}, 5, true).DebugString(),
            "insert([1],first:5)");
  EXPECT_EQ(UpdateRequest::InsertAdjacent({1}, 6, true).DebugString(),
            "insert([1],before:6)");
  EXPECT_EQ(UpdateRequest::InsertAdjacent({1}, 6, false).DebugString(),
            "insert([1],after:6)");
}

}  // namespace
}  // namespace xqb
