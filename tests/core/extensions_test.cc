// Tests for the engine's extensions beyond the paper's core proposal:
//  - `snap atomic` (the full paper's failure-containment use of snap),
//  - `declare updating function` signature checking (Section 5),
//  - the regex builtins fn:matches / fn:replace / fn:tokenize.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/update.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace xqb {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        engine_.LoadDocumentFromString("d", "<r><a/><b/><c/></r>").ok());
  }

  std::string Run(const std::string& query) {
    auto result = engine_.Execute(query);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return engine_.Serialize(*result);
  }

  Status RunStatus(const std::string& query) {
    auto result = engine_.Execute(query);
    return result.ok() ? Status::OK() : result.status();
  }

  Engine engine_;
};

// ---- snap atomic ----

TEST_F(ExtensionsTest, AtomicSnapParses) {
  auto result = engine_.Prepare("snap atomic ordered { 1 }");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->program.body->DebugString(),
            "(snap atomic ordered (int 1))");
}

TEST_F(ExtensionsTest, AtomicSnapAppliesNormally) {
  EXPECT_EQ(Run("snap atomic { insert { <x/> } into { doc('d')/r } }"),
            "");
  EXPECT_EQ(Run("doc('d')"), "<r><a/><b/><c/><x/></r>");
}

TEST_F(ExtensionsTest, AtomicSnapRollsBackOnFailure) {
  // Second request fails (inserting an already-parented node); the
  // first insert and the delete must be rolled back.
  EXPECT_EQ(RunStatus("let $r := doc('d')/r return snap atomic { "
                      "  insert { <x/> } into { $r }, "
                      "  rename { $r/a } to { \"a2\" }, "
                      "  delete { $r/b }, "
                      "  insert { <y/> } into { $r/zzz } }")
                .code(),
            StatusCode::kTypeError);  // Empty target detected at eval.
  EXPECT_EQ(Run("doc('d')"), "<r><a/><b/><c/></r>");

  // Now force an APPLICATION-time failure: two inserts race to create
  // the same attribute name, which only fails when the second placement
  // runs (normalization's copy cannot prevent it).
  Status st = RunStatus(
      "let $r := doc('d')/r return snap atomic ordered { "
      "  rename { $r/a } to { \"a2\" }, "
      "  delete { $r/b }, "
      "  insert { attribute k {\"1\"} } into { $r }, "
      "  insert { attribute k {\"2\"} } into { $r } }");
  EXPECT_EQ(st.code(), StatusCode::kUpdateError);
  // Everything rolled back: rename undone, <b/> re-attached in place,
  // the first attribute removed again.
  EXPECT_EQ(Run("doc('d')"), "<r><a/><b/><c/></r>");
}

TEST_F(ExtensionsTest, NonAtomicSnapKeepsPartialEffects) {
  Status st = RunStatus(
      "let $r := doc('d')/r return snap ordered { "
      "  rename { $r/a } to { \"a2\" }, "
      "  insert { attribute k {\"1\"} } into { $r }, "
      "  insert { attribute k {\"2\"} } into { $r } }");
  EXPECT_EQ(st.code(), StatusCode::kUpdateError);
  // The rename and first attribute applied before the failure and stay.
  EXPECT_EQ(Run("doc('d')"), "<r k=\"1\"><a2/><b/><c/></r>");
}

TEST_F(ExtensionsTest, AtomicRollbackRestoresSiblingPositions) {
  Store store;
  auto doc = ParseXmlDocument(&store, "<r><a/><b/><c/></r>");
  ASSERT_TRUE(doc.ok());
  NodeId r = store.ChildrenOf(*doc)[0];
  NodeId b = store.ChildrenOf(r)[1];
  UpdateList delta;
  delta.Append(UpdateRequest::Delete(b));  // Applies.
  NodeId stray = store.NewElement("x");
  (void)store.AppendChild(r, stray);       // Parent it so insert fails.
  delta.Append(UpdateRequest::InsertInto({stray}, r, false));
  Status st = ApplyUpdateListAtomic(&store, delta, ApplyMode::kOrdered);
  EXPECT_FALSE(st.ok());
  // <b/> is back between <a/> and <c/>.
  EXPECT_EQ(SerializeNode(store, r), "<r><a/><b/><c/><x/></r>");
}

TEST_F(ExtensionsTest, AtomicRollbackRestoresFirstChild) {
  Store store;
  auto doc = ParseXmlDocument(&store, "<r><a/><b/></r>");
  ASSERT_TRUE(doc.ok());
  NodeId r = store.ChildrenOf(*doc)[0];
  NodeId a = store.ChildrenOf(r)[0];
  NodeId stray = store.NewElement("x");
  (void)store.AppendChild(r, stray);
  UpdateList delta;
  delta.Append(UpdateRequest::Delete(a));
  delta.Append(UpdateRequest::InsertInto({stray}, r, false));  // Fails.
  ASSERT_FALSE(
      ApplyUpdateListAtomic(&store, delta, ApplyMode::kOrdered).ok());
  EXPECT_EQ(SerializeNode(store, r), "<r><a/><b/><x/></r>");
}

TEST_F(ExtensionsTest, AtomicRollbackRestoresAttributes) {
  Store store;
  auto doc = ParseXmlDocument(&store, "<r k=\"v\"><a/></r>");
  ASSERT_TRUE(doc.ok());
  NodeId r = store.ChildrenOf(*doc)[0];
  NodeId attr = store.AttributesOf(r)[0];
  NodeId stray = store.NewElement("x");
  (void)store.AppendChild(r, stray);
  UpdateList delta;
  delta.Append(UpdateRequest::Delete(attr));
  delta.Append(UpdateRequest::Rename(r, store.names().Intern("r2")));
  delta.Append(UpdateRequest::InsertInto({stray}, r, false));  // Fails.
  ASSERT_FALSE(
      ApplyUpdateListAtomic(&store, delta, ApplyMode::kOrdered).ok());
  EXPECT_EQ(SerializeNode(store, r), "<r k=\"v\"><a/><x/></r>");
}

// ---- declare updating function ----

TEST_F(ExtensionsTest, UpdatingDeclarationAccepted) {
  EXPECT_EQ(Run("declare updating function mark() { "
                "  insert { <m/> } into { doc('d')/r } }; "
                "(mark(), 1)"),
            "1");
}

TEST_F(ExtensionsTest, MissingUpdatingFlagRejected) {
  // Opt-in: once one function is declared updating, all effectful
  // functions must be.
  Status st = RunStatus(
      "declare updating function a() { insert { <m/> } into "
      "{ doc('d')/r } }; "
      "declare function b() { delete { doc('d')/r/a } }; "
      "(a(), b())");
  EXPECT_EQ(st.code(), StatusCode::kStaticError);
  EXPECT_TRUE(st.message().find("b") != std::string::npos);
}

TEST_F(ExtensionsTest, StaleUpdatingFlagRejected) {
  Status st = RunStatus(
      "declare updating function pure() { 1 + 1 }; pure()");
  EXPECT_EQ(st.code(), StatusCode::kStaticError);
}

TEST_F(ExtensionsTest, MonadicRuleRequiresFlagOnCallers) {
  Status st = RunStatus(
      "declare updating function leaf() { snap { delete { doc('d')/r/a } "
      "} }; "
      "declare function caller() { leaf() }; "
      "caller()");
  EXPECT_EQ(st.code(), StatusCode::kStaticError);
}

TEST_F(ExtensionsTest, NoOptInNoEnforcement) {
  // Programs that never use the marker keep the paper's lenient rules.
  EXPECT_EQ(Run("declare function mark() { "
                "  insert { <m/> } into { doc('d')/r } }; "
                "(mark(), \"ok\")"),
            "ok");
}

// ---- regex builtins ----

TEST_F(ExtensionsTest, FnMatches) {
  EXPECT_EQ(Run("matches(\"abracadabra\", \"bra\")"), "true");
  EXPECT_EQ(Run("matches(\"abracadabra\", \"^a.*a$\")"), "true");
  EXPECT_EQ(Run("matches(\"abracadabra\", \"^bra\")"), "false");
  EXPECT_EQ(Run("matches(\"HELLO\", \"hello\", \"i\")"), "true");
  EXPECT_EQ(RunStatus("matches(\"x\", \"(\")").code(),
            StatusCode::kDynamicError);
}

TEST_F(ExtensionsTest, FnReplace) {
  EXPECT_EQ(Run("replace(\"abracadabra\", \"bra\", \"*\")"),
            "a*cada*");
  EXPECT_EQ(Run("replace(\"abracadabra\", \"a(.)\", \"a$1$1\")"),
            "abbraccaddabbra");
  EXPECT_EQ(Run("replace(\"darted\", \"^(.*?)d(.*)$\", \"$1\")"),
            "ERROR: DynamicError: err:FORX0002: invalid regex: "
            "quantifier '?' with nothing to repeat");
  EXPECT_EQ(Run("replace(\"AAA\", \"a\", \"b\", \"i\")"), "bbb");
}

TEST_F(ExtensionsTest, FnTokenize) {
  EXPECT_EQ(Run("tokenize(\"a,b,,c\", \",\")"), "a b  c");
  EXPECT_EQ(Run("count(tokenize(\"a,b,,c\", \",\"))"), "4");
  EXPECT_EQ(Run("tokenize(\"The  quick brown\", \"\\s+\")"),
            "The quick brown");
  EXPECT_EQ(RunStatus("tokenize(\"abc\", \"x?\")").code(),
            StatusCode::kDynamicError);  // Zero-length match.
}

TEST_F(ExtensionsTest, RegexOverNodeContent) {
  EXPECT_EQ(Run("count(doc('d')/r/*[matches(name(.), \"^[ab]$\")])"),
            "2");
}

}  // namespace
}  // namespace xqb
