// Determinism suite for the parallel evaluation of effect-free snap
// scopes: for threads=1 vs threads=8 the engine must produce identical
// result sequences, identical update application order (hence identical
// final stores), identical errors, and identical governor trip behavior
// (kResourceExhausted, kCancelled). Also covers the eligibility rules
// (fn:trace is excluded; snap-containing bodies stay serial) and the
// algebra execution path.

#include <gtest/gtest.h>

#include <string>

#include "base/limits.h"
#include "core/engine.h"

namespace xqb {
namespace {

constexpr const char* kDoc =
    "<r>"
    "<item id='a'><v>1</v></item>"
    "<item id='b'><v>2</v></item>"
    "<item id='c'><v>3</v></item>"
    "<item id='d'><v>4</v></item>"
    "<item id='e'><v>5</v></item>"
    "<item id='f'><v>6</v></item>"
    "</r>";

struct RunOutcome {
  Status status = Status::OK();
  std::string result;
  std::string store_after;
  int64_t updates_applied = 0;
  int64_t parallel_regions = 0;
};

/// Runs `query` on a fresh engine loaded with kDoc, returning the
/// serialized result, the serialized document after the run, and the
/// run statistics.
RunOutcome RunWith(const std::string& query, int threads,
                   ExecOptions options = {}) {
  Engine engine;
  auto doc = engine.LoadDocumentFromString("d", kDoc);
  EXPECT_TRUE(doc.ok());
  options.threads = threads;
  RunOutcome out;
  auto result = engine.Execute(query, options);
  // Stats first: the store-dump Execute below overwrites them.
  out.updates_applied = engine.last_updates_applied();
  out.parallel_regions = engine.last_parallel_regions();
  if (result.ok()) {
    out.result = engine.Serialize(*result);
    auto dump = engine.Execute("doc('d')");
    EXPECT_TRUE(dump.ok());
    out.store_after = engine.Serialize(*dump);
  } else {
    out.status = result.status();
  }
  return out;
}

TEST(ParallelDeterminismTest, PureFlworResultsIdentical) {
  const std::string q =
      "for $i in 1 to 200 return $i * $i - ($i idiv 3)";
  RunOutcome serial = RunWith(q, 1);
  RunOutcome parallel = RunWith(q, 8);
  ASSERT_TRUE(serial.status.ok());
  ASSERT_TRUE(parallel.status.ok());
  EXPECT_EQ(serial.result, parallel.result);
  EXPECT_EQ(serial.parallel_regions, 0);
  EXPECT_GT(parallel.parallel_regions, 0)
      << "threads=8 never engaged the worker pool";
}

TEST(ParallelDeterminismTest, NodeConstructionInWorkersIsOrdered) {
  // Fresh elements are allocated concurrently by worker clones; the
  // concatenated result must still be in iteration order.
  const std::string q =
      "for $x in doc('d')/r/item "
      "return <out id='{string($x/@id)}'>{string($x/v)}</out>";
  RunOutcome serial = RunWith(q, 1);
  RunOutcome parallel = RunWith(q, 8);
  ASSERT_TRUE(serial.status.ok());
  ASSERT_TRUE(parallel.status.ok());
  EXPECT_EQ(serial.result, parallel.result);
  EXPECT_GT(parallel.parallel_regions, 0);
}

TEST(ParallelDeterminismTest, UpdateDeltaOrderIdentical) {
  // Every iteration inserts into the same parent: the children's final
  // order is exactly the Δ application order, so any reordering of the
  // per-iteration deltas would change the document.
  const std::string q =
      "snap { for $i in 1 to 20 "
      "       return insert { <e>{$i}</e> } into { doc('d')/r } }";
  RunOutcome serial = RunWith(q, 1);
  RunOutcome parallel = RunWith(q, 8);
  ASSERT_TRUE(serial.status.ok());
  ASSERT_TRUE(parallel.status.ok());
  EXPECT_EQ(serial.store_after, parallel.store_after);
  EXPECT_EQ(serial.updates_applied, parallel.updates_applied);
  EXPECT_GT(parallel.parallel_regions, 0);
}

TEST(ParallelDeterminismTest, EffectfulOuterSnapWithPureInnerScope) {
  // The outer snap's body emits updates (parallel-eligible with Δ
  // capture); each iteration also runs a pure inner FLWOR. Results and
  // final store must be bit-identical to serial.
  const std::string q =
      "snap { for $x in doc('d')/r/item "
      "       return insert { <sum>{sum(for $j in 1 to 50 return $j * "
      "number($x/v))}</sum> } into { $x } }";
  RunOutcome serial = RunWith(q, 1);
  RunOutcome parallel = RunWith(q, 8);
  ASSERT_TRUE(serial.status.ok());
  ASSERT_TRUE(parallel.status.ok());
  EXPECT_EQ(serial.result, parallel.result);
  EXPECT_EQ(serial.store_after, parallel.store_after);
  EXPECT_EQ(serial.updates_applied, parallel.updates_applied);
  EXPECT_GT(parallel.parallel_regions, 0);
}

TEST(ParallelDeterminismTest, SnapInBodyStaysSerial) {
  // A body containing its own snap mutates the store mid-scope: not
  // effect-free, so it must never be fanned out.
  const std::string q =
      "for $i in 1 to 5 "
      "return snap { insert { <e/> } into { doc('d')/r } }";
  RunOutcome parallel = RunWith(q, 8);
  ASSERT_TRUE(parallel.status.ok());
  EXPECT_EQ(parallel.parallel_regions, 0);
}

TEST(ParallelDeterminismTest, TraceIsExcludedFromParallelism) {
  // fn:trace performs observable I/O: interleaving it across threads
  // would reorder output, so purity must veto the fan-out.
  const std::string q = "for $i in 1 to 10 return trace($i, 'it')";
  RunOutcome parallel = RunWith(q, 8);
  ASSERT_TRUE(parallel.status.ok());
  EXPECT_EQ(parallel.parallel_regions, 0);
}

TEST(ParallelDeterminismTest, FirstIterationErrorWins) {
  // Iteration 37 fails. Parallel evaluation must report the same error
  // as serial (the smallest failing index), not whichever worker
  // happened to fail first in wall-clock order.
  const std::string q =
      "for $i in 1 to 100 "
      "return (if ($i = 37) then $i idiv 0 else $i, "
      "        if ($i = 90) then $i idiv 0 else $i)";
  RunOutcome serial = RunWith(q, 1);
  RunOutcome parallel = RunWith(q, 8);
  ASSERT_FALSE(serial.status.ok());
  ASSERT_FALSE(parallel.status.ok());
  EXPECT_EQ(serial.status.code(), parallel.status.code());
  EXPECT_EQ(serial.status.message(), parallel.status.message());
}

TEST(ParallelDeterminismTest, StepBudgetTripsResourceExhausted) {
  const std::string q =
      "for $i in 1 to 500 return sum(for $j in 1 to 200 return $j)";
  ExecOptions options;
  options.limits.max_steps = 20000;
  options.limits.check_interval = 64;
  RunOutcome serial = RunWith(q, 1, options);
  RunOutcome parallel = RunWith(q, 8, options);
  ASSERT_FALSE(serial.status.ok());
  ASSERT_FALSE(parallel.status.ok());
  EXPECT_EQ(serial.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(parallel.status.code(), StatusCode::kResourceExhausted);
}

TEST(ParallelDeterminismTest, StoreGrowthTripsResourceExhausted) {
  const std::string q =
      "for $i in 1 to 500 return <wide a='1' b='2'><x/><y/></wide>";
  ExecOptions options;
  options.limits.max_store_growth = 100;
  RunOutcome serial = RunWith(q, 1, options);
  RunOutcome parallel = RunWith(q, 8, options);
  ASSERT_FALSE(serial.status.ok());
  ASSERT_FALSE(parallel.status.ok());
  EXPECT_EQ(serial.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(parallel.status.code(), StatusCode::kResourceExhausted);
}

TEST(ParallelDeterminismTest, CancellationTripsCancelled) {
  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  ExecOptions options;
  options.limits = ExecLimits::Unlimited();
  options.limits.check_interval = 16;
  options.cancellation = token;
  const std::string q = "for $i in 1 to 1000 return $i * $i";
  RunOutcome serial = RunWith(q, 1, options);
  RunOutcome parallel = RunWith(q, 8, options);
  ASSERT_FALSE(serial.status.ok());
  ASSERT_FALSE(parallel.status.ok());
  EXPECT_EQ(serial.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(parallel.status.code(), StatusCode::kCancelled);
}

TEST(ParallelDeterminismTest, AlgebraPathMatchesInterpreter) {
  const std::string q =
      "for $x in doc('d')/r/item "
      "where number($x/v) > 2 "
      "return <hit>{string($x/@id)}</hit>";
  ExecOptions algebra;
  algebra.optimize = true;
  RunOutcome serial = RunWith(q, 1);
  RunOutcome parallel_interp = RunWith(q, 8);
  RunOutcome parallel_algebra = RunWith(q, 8, algebra);
  ASSERT_TRUE(serial.status.ok());
  ASSERT_TRUE(parallel_interp.status.ok());
  ASSERT_TRUE(parallel_algebra.status.ok());
  EXPECT_EQ(serial.result, parallel_interp.result);
  EXPECT_EQ(serial.result, parallel_algebra.result);
}

TEST(ParallelDeterminismTest, RepeatedRunsAreStable) {
  // Shake out scheduling-dependent nondeterminism: many parallel runs
  // of an update-emitting query must all agree with the serial run.
  const std::string q =
      "snap { for $x in doc('d')/r/item "
      "       return (insert { <t>{string($x/@id)}</t> } into "
      "               { doc('d')/r }, count($x/v)) }";
  RunOutcome serial = RunWith(q, 1);
  ASSERT_TRUE(serial.status.ok());
  for (int i = 0; i < 10; ++i) {
    RunOutcome parallel = RunWith(q, 8);
    ASSERT_TRUE(parallel.status.ok());
    EXPECT_EQ(serial.result, parallel.result) << "run " << i;
    EXPECT_EQ(serial.store_after, parallel.store_after) << "run " << i;
  }
}

}  // namespace
}  // namespace xqb
