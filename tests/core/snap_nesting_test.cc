// E3 + E5: nested snap semantics (Sections 2.3–2.5, 3.4) — the
// stack-like scoping of pending updates, the paper's ordering example,
// the nextid() counter, and snap modes interacting with nesting.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace xqb {
namespace {

class SnapNestingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.LoadDocumentFromString("d", "<x/>").ok());
  }

  std::string Run(const std::string& query) {
    auto result = engine_.Execute(query);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return engine_.Serialize(*result);
  }

  Engine engine_;
};

TEST_F(SnapNestingTest, PaperSection34Example) {
  // "the following piece of code inserts <b/><a/><c/> into $x, in this
  // order, since the internal snap is closed first, and it only applies
  // the updates in its own scope."
  EXPECT_EQ(Run("let $x := doc('d')/x return "
                "snap ordered { insert {<a/>} into {$x}, "
                "               snap { insert {<b/>} into {$x} }, "
                "               insert {<c/>} into {$x} }"),
            "");
  EXPECT_EQ(Run("doc('d')"), "<x><b/><a/><c/></x>");
}

TEST_F(SnapNestingTest, InnerSnapDoesNotFreezeOuterState) {
  // "the snap operator must not freeze the state when its scope is
  // opened, but just delay the updates that are in its immediate scope."
  EXPECT_EQ(Run("let $x := doc('d')/x return snap { "
                "  snap insert { <seen/> } into { $x }, "
                "  insert { element n { count($x/*) } } into { $x } }"),
            "");
  // The inner snap's effect was visible when the outer insert's content
  // expression ran.
  EXPECT_EQ(Run("doc('d')"), "<x><seen/><n>1</n></x>");
}

TEST_F(SnapNestingTest, ThreeLevelsOfNesting) {
  EXPECT_EQ(Run("let $x := doc('d')/x return "
                "snap { insert {<l1/>} into {$x}, "
                "  snap { insert {<l2/>} into {$x}, "
                "    snap { insert {<l3/>} into {$x} } } }"),
            "");
  // Innermost applies first.
  EXPECT_EQ(Run("doc('d')"), "<x><l3/><l2/><l1/></x>");
}

TEST_F(SnapNestingTest, NextIdCounterFromSection25) {
  EXPECT_EQ(Run("declare variable $d := element counter { 0 }; "
                "declare function nextid() { "
                "  snap { replace { $d/text() } with { $d + 1 }, "
                "         string($d + 1) } }; "
                "for $i in 1 to 5 return nextid()"),
            "1 2 3 4 5");
}

TEST_F(SnapNestingTest, NextIdInsideOuterSnapStillCounts) {
  // "the nextid() function may be used in the scope of another snap" —
  // each inner snap applies its own replace immediately.
  EXPECT_EQ(Run("declare variable $d := element counter { 0 }; "
                "declare function nextid() { "
                "  snap { replace { $d/text() } with { $d + 1 }, "
                "         string($d + 1) } }; "
                "snap { for $i in 1 to 3 return "
                "  insert { <id v=\"{nextid()}\"/> } into { doc('d')/x } }"),
            "");
  EXPECT_EQ(Run("doc('d')"),
            "<x><id v=\"1\"/><id v=\"2\"/><id v=\"3\"/></x>");
}

TEST_F(SnapNestingTest, SnapReturnsItsValue) {
  EXPECT_EQ(Run("snap { 1 + 1 }"), "2");
  EXPECT_EQ(Run("snap { insert { <y/> } into { doc('d')/x }, \"done\" }"),
            "done");
}

TEST_F(SnapNestingTest, SnapMakesEffectsVisibleToSequel) {
  // Section 2.3's pattern: the sequence operator guarantees the snap
  // finished before the count runs.
  EXPECT_EQ(Run("let $x := doc('d')/x return "
                "( snap insert { <e/> } into { $x }, count($x/e) )"),
            "1");
}

TEST_F(SnapNestingTest, WithoutSnapEffectsInvisible) {
  EXPECT_EQ(Run("let $x := doc('d')/x return "
                "( insert { <e/> } into { $x }, count($x/e) )"),
            "0");
}

TEST_F(SnapNestingTest, ModesApplyPerSnap) {
  // An inner conflict-detection snap fails on a genuine conflict even
  // under an outer ordered snap; the error propagates.
  EXPECT_EQ(Run("let $x := doc('d')/x return snap ordered { "
                "  snap conflict-detection { "
                "    insert {<a/>} into {$x}, insert {<b/>} into {$x} } }"),
            "ERROR: ConflictError: two inserts write the same sibling "
            "slot (last of 1) (rule R3)");
  EXPECT_EQ(Run("doc('d')"), "<x/>");
}

TEST_F(SnapNestingTest, SnapsCountObservably) {
  ExecOptions options;
  auto r = engine_.Execute(
      "snap { snap { 1 }, snap { 2 } }", options);
  ASSERT_TRUE(r.ok());
  // Two explicit inner, one explicit outer, one implicit top-level.
  EXPECT_EQ(engine_.last_snaps_applied(), 4);
  EXPECT_EQ(engine_.last_updates_applied(), 0);
}

TEST_F(SnapNestingTest, UpdateCountsObservably) {
  auto r = engine_.Execute(
      "let $x := doc('d')/x return snap { "
      "insert {<a/>} into {$x}, insert {<b/>} into {$x} }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(engine_.last_updates_applied(), 2);
}

TEST_F(SnapNestingTest, FunctionCallDeltaEscapesToCallersSnap) {
  // An update inside a function without its own snap lands in the
  // caller's enclosing snap scope.
  EXPECT_EQ(Run("declare function mark() { "
                "  insert { <m/> } into { doc('d')/x } }; "
                "( mark(), count(doc('d')/x/m) )"),
            "0");  // Not yet applied inside the top-level snap.
  EXPECT_EQ(Run("count(doc('d')/x/m)"), "1");  // Applied at query end.
}

}  // namespace
}  // namespace xqb
