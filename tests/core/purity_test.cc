// Unit tests for the side-effect judgment (Section 4.2) and the
// updating-function fixpoint (Section 5).

#include <gtest/gtest.h>

#include "core/normalize.h"
#include "core/purity.h"
#include "frontend/parser.h"

namespace xqb {
namespace {

PurityInfo Analyze(const char* query) {
  auto program = ParseProgram(query);
  EXPECT_TRUE(program.ok()) << program.status();
  NormalizeProgram(&*program);
  PurityAnalysis analysis;
  analysis.AnalyzeProgram(&*program);
  return analysis.Analyze(*program->body);
}

TEST(Purity, PureExpressions) {
  PurityInfo info = Analyze("for $x in 1 to 10 return $x * 2");
  EXPECT_TRUE(info.pure());
  EXPECT_FALSE(info.has_update);
  EXPECT_FALSE(info.has_snap);
}

TEST(Purity, ConstructorsAndCopyArePure) {
  // "If they only perform allocations or copies, their evaluation can
  // still be commuted or interleaved" (Section 3.4).
  EXPECT_TRUE(Analyze("<a>{1+1}</a>").pure());
  EXPECT_TRUE(Analyze("copy { $x }").pure());
  EXPECT_TRUE(Analyze("element foo { text { \"x\" } }").pure());
}

TEST(Purity, UpdatePrimitivesHaveUpdate) {
  for (const char* q :
       {"insert { $n } into { $t }", "delete { $t }",
        "replace { $t } with { $n }", "rename { $t } to { \"n\" }"}) {
    PurityInfo info = Analyze(q);
    EXPECT_TRUE(info.has_update) << q;
    EXPECT_FALSE(info.has_snap) << q;
  }
}

TEST(Purity, UpdateInsideFlworPropagates) {
  PurityInfo info =
      Analyze("for $x in $s return insert { $x } into { $t }");
  EXPECT_TRUE(info.has_update);
  EXPECT_FALSE(info.has_snap);
}

TEST(Purity, SnapHasSnapButAbsorbsUpdates) {
  // A snap applies its own scope's updates: the expression as a whole
  // emits no pending Δ, but it does mutate the store.
  PurityInfo info = Analyze("snap { insert { $n } into { $t } }");
  EXPECT_TRUE(info.has_snap);
  EXPECT_FALSE(info.has_update);
}

TEST(Purity, UpdateBesideSnapKeepsBothFlags) {
  PurityInfo info =
      Analyze("(snap { delete { $a } }, insert { $n } into { $t })");
  EXPECT_TRUE(info.has_snap);
  EXPECT_TRUE(info.has_update);
}

TEST(Purity, FunctionFlagsPropagateToCallSites) {
  PurityInfo info = Analyze(
      "declare function upd() { insert { $n } into { $t } }; "
      "upd()");
  EXPECT_TRUE(info.has_update);
  EXPECT_FALSE(info.has_snap);
}

TEST(Purity, MonadicRuleThroughCallChain) {
  // "a function that calls an updating function is updating as well."
  PurityInfo info = Analyze(
      "declare function inner() { snap { delete { $x } } }; "
      "declare function middle() { inner() }; "
      "declare function outer() { middle() }; "
      "outer()");
  EXPECT_TRUE(info.has_snap);
}

TEST(Purity, RecursiveFunctionsReachFixpoint) {
  PurityInfo info = Analyze(
      "declare function even($n) { if ($n = 0) then snap { delete { $d } } "
      "else odd($n - 1) }; "
      "declare function odd($n) { if ($n = 1) then () else even($n - 1) }; "
      "odd(7)");
  EXPECT_TRUE(info.has_snap);
}

TEST(Purity, PureFunctionStaysPure) {
  PurityInfo info = Analyze(
      "declare function fib($n) { if ($n <= 1) then $n "
      "else fib($n - 1) + fib($n - 2) }; "
      "fib(10)");
  EXPECT_TRUE(info.pure());
}

TEST(Purity, UnknownFunctionsAssumedPure) {
  EXPECT_TRUE(Analyze("count((1,2,3)) + string-length(\"x\")").pure());
}

TEST(Purity, ClauseExpressionsAreAnalyzed) {
  PurityInfo info = Analyze(
      "for $x in (snap { delete { $d } }, 1) return $x");
  EXPECT_TRUE(info.has_snap);
  PurityInfo info2 =
      Analyze("for $x in 1 to 3 order by (delete { $d }, $x) return $x");
  EXPECT_TRUE(info2.has_update);
}

}  // namespace
}  // namespace xqb
