// E2 (Figures 2 and 3): the formal semantics judgments — strict
// left-to-right evaluation order, store threading, Δ collection order,
// and the per-rule behaviour of every update operation.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/evaluator.h"
#include "core/normalize.h"
#include "frontend/parser.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace xqb {
namespace {

class SemanticsRulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc =
        engine_.LoadDocumentFromString("d", "<r><a/><b/><c>old</c></r>");
    ASSERT_TRUE(doc.ok());
  }

  std::string Run(const std::string& query) {
    auto result = engine_.Execute(query);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return engine_.Serialize(*result);
  }

  std::string Doc() { return Run("doc('d')"); }

  Engine engine_;
};

// The sequence rule: Expr1 fully evaluated before Expr2, and Δ1 before
// Δ2 in the collected list.
TEST_F(SemanticsRulesTest, SequenceRuleEvaluationAndDeltaOrder) {
  // Effects through nested snaps expose evaluation order: each step
  // appends a marker element whose content is the current count.
  EXPECT_EQ(
      Run("let $r := doc('d')/r return ("
          "  snap insert { <m n=\"{count($r/*)}\"/> } into { $r }, "
          "  snap insert { <m n=\"{count($r/*)}\"/> } into { $r } )"),
      "");
  EXPECT_EQ(Doc(),
            "<r><a/><b/><c>old</c><m n=\"3\"/><m n=\"4\"/></r>");
}

TEST_F(SemanticsRulesTest, DeltaOrderFollowsProgramOrder) {
  // Both inserts collect in one snap; ordered application runs them in
  // Δ order, so the "as first" markers stack in reverse program order.
  EXPECT_EQ(Run("let $r := doc('d')/r return snap ordered { "
                "insert { <x/> } as first into { $r }, "
                "insert { <y/> } as first into { $r } }"),
            "");
  EXPECT_EQ(Doc(), "<r><y/><x/><a/><b/><c>old</c></r>");
}

TEST_F(SemanticsRulesTest, FlworGeneratesDeltaInIterationOrder) {
  EXPECT_EQ(Run("let $r := doc('d')/r return snap ordered { "
                "for $i in 1 to 3 return "
                "insert { element m { $i } } into { $r } }"),
            "");
  EXPECT_EQ(Doc(),
            "<r><a/><b/><c>old</c><m>1</m><m>2</m><m>3</m></r>");
}

// Update operators return the empty sequence (Figure 2 conclusions).
TEST_F(SemanticsRulesTest, UpdateOperatorsReturnEmpty) {
  EXPECT_EQ(Run("let $r := doc('d')/r return "
                "count((insert { <x/> } into { $r }, "
                "       delete { $r/a }, "
                "       rename { $r/b } to { \"bb\" }, "
                "       replace { $r/c } with { <c2/> }))"),
            "0");
}

// Figure 2, insert rule: source evaluated before target.
TEST_F(SemanticsRulesTest, InsertEvaluatesSourceBeforeTarget) {
  // The source expression contains a snap whose effect the target
  // expression can observe: the target path only finds <t/> because the
  // source ran first. The pending insert applies when the query's
  // top-level snap closes, so a second query checks the result.
  EXPECT_EQ(Run("let $r := doc('d')/r return "
                "insert { (snap insert { <t/> } into { $r }, <n/>) } "
                "  into { $r/t }"),
            "");
  EXPECT_EQ(Run("count(doc('d')/r/t/n)"), "1");
}

// Figure 2, replace rule: Δ = (Δ1, Δ2, insert(...), delete(node)).
TEST_F(SemanticsRulesTest, ReplaceExpandsToInsertPlusDelete) {
  auto program = ParseProgram(
      "replace { $t } with { $n }");
  ASSERT_TRUE(program.ok());
  NormalizeProgram(&*program);
  Store store;
  auto doc = ParseXmlDocument(&store, "<r><old/></r>");
  ASSERT_TRUE(doc.ok());
  NodeId r = store.ChildrenOf(*doc)[0];
  NodeId old = store.ChildrenOf(r)[0];
  EvaluatorOptions options;
  options.implicit_top_snap = false;
  Evaluator evaluator(&store, &*program, options);
  evaluator.BindExternalVariable("t", Sequence{Item::Node(old)});
  evaluator.BindExternalVariable(
      "n", Sequence{Item::Node(store.NewElement("new"))});
  auto result = evaluator.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  std::vector<const UpdateRequest*> delta =
      evaluator.pending_delta().Flatten();
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0]->op, UpdateRequest::Op::kInsert);
  EXPECT_EQ(delta[0]->anchor, InsertAnchor::kAfter);
  EXPECT_EQ(delta[0]->anchor_node, old);
  EXPECT_EQ(delta[1]->op, UpdateRequest::Op::kDelete);
  EXPECT_EQ(delta[1]->target, old);
}

TEST_F(SemanticsRulesTest, ReplaceKeepsSiblingPosition) {
  EXPECT_EQ(Run("replace { doc('d')/r/b } with { <b2/> }"), "");
  EXPECT_EQ(Doc(), "<r><a/><b2/><c>old</c></r>");
}

TEST_F(SemanticsRulesTest, ReplaceWithSequence) {
  EXPECT_EQ(Run("replace { doc('d')/r/b } with { (<x/>, <y/>) }"), "");
  EXPECT_EQ(Doc(), "<r><a/><x/><y/><c>old</c></r>");
}

TEST_F(SemanticsRulesTest, ReplaceParentlessErrors) {
  EXPECT_EQ(Run("replace { doc('d') } with { <x/> }"),
            "ERROR: UpdateError: err:XUDY0009: replace target has no "
            "parent (line 1)");
}

TEST_F(SemanticsRulesTest, RenameRule) {
  EXPECT_EQ(Run("rename { doc('d')/r/a } to { concat(\"a\", \"2\") }"),
            "");
  EXPECT_EQ(Doc(), "<r><a2/><b/><c>old</c></r>");
}

TEST_F(SemanticsRulesTest, RenameAttribute) {
  ASSERT_TRUE(engine_.LoadDocumentFromString("e", "<x id=\"1\"/>").ok());
  EXPECT_EQ(Run("rename { doc('e')/x/@id } to { \"key\" }"), "");
  EXPECT_EQ(Run("doc('e')"), "<x key=\"1\"/>");
}

TEST_F(SemanticsRulesTest, DeleteDetachesButValueSurvives) {
  // Section 3.1: the detached node remains usable through a variable.
  EXPECT_EQ(Run("let $c := doc('d')/r/c return "
                "( snap delete { $c }, string($c) )"),
            "old");
  EXPECT_EQ(Doc(), "<r><a/><b/></r>");
}

TEST_F(SemanticsRulesTest, DetachedNodeCanBeReinserted) {
  EXPECT_EQ(Run("let $c := doc('d')/r/c return "
                "( snap delete { $c }, "
                "  snap insert { $c } as first into { doc('d')/r } )"),
            "");
  EXPECT_EQ(Doc(), "<r><c>old</c><a/><b/></r>");
}

TEST_F(SemanticsRulesTest, CopyRuleCreatesFreshTree) {
  EXPECT_EQ(Run("let $orig := doc('d')/r/c "
                "let $copy := copy { $orig } return "
                "( snap rename { $copy } to { \"c2\" }, "
                "  name($orig), name($copy) )"),
            "c c2");
  EXPECT_EQ(Doc(), "<r><a/><b/><c>old</c></r>");  // Original untouched.
}

TEST_F(SemanticsRulesTest, CopyPassesAtomicsThrough) {
  EXPECT_EQ(Run("copy { (1, \"a\") }"), "1 a");
}

// The normalization copy: inserting the same variable twice yields two
// independent copies, and the source keeps zero parents changed (E10).
TEST_F(SemanticsRulesTest, InsertCopiesPreventDoubleParents) {
  EXPECT_EQ(Run("let $n := <n/> return ("
                "snap insert { $n } into { doc('d')/r/a }, "
                "snap insert { $n } into { doc('d')/r/b }, "
                "count(doc('d')//n) )"),
            "2");
  EXPECT_EQ(Doc(), "<r><a><n/></a><b><n/></b><c>old</c></r>");
}

TEST_F(SemanticsRulesTest, InsertAtomicBecomesText) {
  EXPECT_EQ(Run("insert { \"txt\" } into { doc('d')/r/a }"), "");
  EXPECT_EQ(Doc(), "<r><a>txt</a><b/><c>old</c></r>");
}

TEST_F(SemanticsRulesTest, InsertAttributeNode) {
  EXPECT_EQ(Run("insert { attribute k {\"v\"} } into { doc('d')/r/a }"),
            "");
  EXPECT_EQ(Doc(), "<r><a k=\"v\"/><b/><c>old</c></r>");
}

TEST_F(SemanticsRulesTest, InsertTargetMustBeSingleNode) {
  EXPECT_EQ(Run("insert { <x/> } into { doc('d')/r/* }"),
            "ERROR: TypeError: err:XUTY0008: insert target must evaluate "
            "to exactly one node (got 3 items) (line 1)");
}

TEST_F(SemanticsRulesTest, InsertBeforeAfter) {
  EXPECT_EQ(Run("insert { <x/> } before { doc('d')/r/b }"), "");
  EXPECT_EQ(Run("insert { <y/> } after { doc('d')/r/b }"), "");
  EXPECT_EQ(Doc(), "<r><a/><x/><b/><y/><c>old</c></r>");
}

TEST_F(SemanticsRulesTest, InsertBeforeParentlessErrors) {
  EXPECT_EQ(Run("insert { <x/> } before { doc('d') }"),
            "ERROR: UpdateError: err:XUDY0029: insert before/after a "
            "parentless node (line 1)");
}

// The function-call rule threads the store through arguments first,
// then the body.
TEST_F(SemanticsRulesTest, FunctionCallRuleOrder) {
  EXPECT_EQ(Run("declare function f($x) { count(doc('d')/r/*) }; "
                "f(snap insert { <new/> } into { doc('d')/r })"),
            "4");  // The argument's snap applied before the body ran.
}

// The if rule evaluates only the selected branch's Δ.
TEST_F(SemanticsRulesTest, ConditionalCollectsOnlyTakenBranch) {
  EXPECT_EQ(Run("if (true()) then insert { <t/> } into { doc('d')/r } "
                "else insert { <e/> } into { doc('d')/r }"),
            "");
  EXPECT_EQ(Doc(), "<r><a/><b/><c>old</c><t/></r>");
}

// Where-clause effects happen per row even for rejected rows.
TEST_F(SemanticsRulesTest, WhereClauseEffectsAlwaysCollected) {
  EXPECT_EQ(Run("for $i in 1 to 3 "
                "where (insert { element w { $i } } into { doc('d')/r }, "
                "       $i mod 2 = 1) "
                "return $i"),
            "1 3");
  EXPECT_EQ(Doc(),
            "<r><a/><b/><c>old</c><w>1</w><w>2</w><w>3</w></r>");
}

TEST_F(SemanticsRulesTest, ErrorInsideSnapDiscardsItsDelta) {
  EXPECT_EQ(Run("let $r := doc('d')/r return "
                "( snap { insert { <x/> } into { $r }, error(\"stop\") } )"),
            "ERROR: DynamicError: stop");
  EXPECT_EQ(Doc(), "<r><a/><b/><c>old</c></r>");  // Nothing applied.
}

TEST_F(SemanticsRulesTest, PendingUpdatesInvisibleWithinScope) {
  // Inside the innermost snap nothing changes mid-scope: both counts
  // see the pre-update store (Section 3.4's key property).
  EXPECT_EQ(Run("let $r := doc('d')/r return "
                "( count($r/*), insert { <x/> } into { $r }, count($r/*) )"),
            "3 3");
  EXPECT_EQ(Run("count(doc('d')/r/*)"), "4");  // Applied at query end.
}

}  // namespace
}  // namespace xqb
