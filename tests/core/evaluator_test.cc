// Unit tests for the dynamic-semantics evaluator: one or more tests per
// core expression form (Appendix B), driven through the public Engine.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace xqb {
namespace {

/// Evaluates `query` against an engine preloaded with a small document
/// registered as doc('d'), returning the serialized result.
class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = engine_.LoadDocumentFromString("d", R"(
      <site>
        <people>
          <person id="p1"><name>Ann</name><age>34</age></person>
          <person id="p2"><name>Bob</name><age>27</age></person>
          <person id="p3"><name>Cid</name><age>41</age></person>
        </people>
        <items>
          <item id="i1" price="10"/>
          <item id="i2" price="25"/>
        </items>
      </site>)");
    ASSERT_TRUE(doc.ok()) << doc.status();
  }

  std::string Eval(const std::string& query) {
    auto result = engine_.Execute(query);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return engine_.Serialize(*result);
  }

  Status EvalStatus(const std::string& query) {
    auto result = engine_.Execute(query);
    return result.ok() ? Status::OK() : result.status();
  }

  Engine engine_;
};

// ---- literals, sequences, variables ----

TEST_F(EvaluatorTest, Literals) {
  EXPECT_EQ(Eval("42"), "42");
  EXPECT_EQ(Eval("-3"), "-3");
  EXPECT_EQ(Eval("2.5"), "2.5");
  EXPECT_EQ(Eval("\"s'tr\""), "s'tr");
  EXPECT_EQ(Eval("()"), "");
}

TEST_F(EvaluatorTest, SequenceConcatenationAndFlattening) {
  EXPECT_EQ(Eval("1, 2, 3"), "1 2 3");
  EXPECT_EQ(Eval("(1, (2, 3)), ()"), "1 2 3");
}

TEST_F(EvaluatorTest, LetBindingAndShadowing) {
  EXPECT_EQ(Eval("let $x := 1 return let $x := $x + 1 return $x"), "2");
}

TEST_F(EvaluatorTest, UnboundVariableErrors) {
  Status st = EvalStatus("$nope");
  EXPECT_EQ(st.code(), StatusCode::kStaticError);
}

TEST_F(EvaluatorTest, ExternalVariableBinding) {
  engine_.BindVariable("ext", Sequence{Item::Integer(9)});
  EXPECT_EQ(Eval("declare variable $ext external; $ext + 1"), "10");
  // Also usable without a declaration (engine-level convenience).
  EXPECT_EQ(Eval("$ext * 2"), "18");
}

TEST_F(EvaluatorTest, GlobalVariablesEvaluateInOrder) {
  EXPECT_EQ(Eval("declare variable $a := 2; "
                 "declare variable $b := $a * 3; "
                 "$b"),
            "6");
}

// ---- arithmetic ----

TEST_F(EvaluatorTest, IntegerArithmetic) {
  EXPECT_EQ(Eval("2 + 3 * 4"), "14");
  EXPECT_EQ(Eval("10 - 2 - 3"), "5");
  EXPECT_EQ(Eval("7 idiv 2"), "3");
  EXPECT_EQ(Eval("7 mod 2"), "1");
  EXPECT_EQ(Eval("-7 idiv 2"), "-3");
}

TEST_F(EvaluatorTest, DivisionProducesDouble) {
  EXPECT_EQ(Eval("7 div 2"), "3.5");
  EXPECT_EQ(Eval("6 div 2"), "3");
}

TEST_F(EvaluatorTest, DoubleArithmetic) {
  EXPECT_EQ(Eval("0.5 + 0.25"), "0.75");
  EXPECT_EQ(Eval("1.0 div 0.0"), "INF");
  EXPECT_EQ(Eval("-1.0 div 0.0"), "-INF");
}

TEST_F(EvaluatorTest, IntegerDivisionByZeroErrors) {
  EXPECT_EQ(EvalStatus("1 idiv 0").code(), StatusCode::kDynamicError);
  EXPECT_EQ(EvalStatus("1 mod 0").code(), StatusCode::kDynamicError);
}

TEST_F(EvaluatorTest, ArithmeticWithEmptyIsEmpty) {
  EXPECT_EQ(Eval("() + 1"), "");
  EXPECT_EQ(Eval("1 * ()"), "");
  EXPECT_EQ(Eval("-()"), "");
}

TEST_F(EvaluatorTest, UntypedContentCoercesToNumber) {
  EXPECT_EQ(Eval("doc('d')//person[@id='p1']/age + 1"), "35");
}

TEST_F(EvaluatorTest, ArithmeticOnSequenceErrors) {
  EXPECT_EQ(EvalStatus("(1,2) + 1").code(), StatusCode::kTypeError);
}

// ---- comparisons and logic ----

TEST_F(EvaluatorTest, ValueComparisons) {
  EXPECT_EQ(Eval("1 eq 1"), "true");
  EXPECT_EQ(Eval("1 lt 2"), "true");
  EXPECT_EQ(Eval("\"a\" lt \"b\""), "true");
  EXPECT_EQ(Eval("() eq 1"), "");
  EXPECT_EQ(EvalStatus("(1,2) eq 1").code(), StatusCode::kTypeError);
}

TEST_F(EvaluatorTest, GeneralComparisonsAreExistential) {
  EXPECT_EQ(Eval("(1, 2, 3) = 2"), "true");
  EXPECT_EQ(Eval("(1, 2) = (3, 4)"), "false");
  EXPECT_EQ(Eval("(1, 2) != 1"), "true");  // 2 != 1.
  EXPECT_EQ(Eval("() = 1"), "false");
  EXPECT_EQ(Eval("(1, 5) < (0, 2)"), "true");
}

TEST_F(EvaluatorTest, GeneralComparisonOverNodes) {
  EXPECT_EQ(Eval("doc('d')//person/@id = 'p2'"), "true");
  EXPECT_EQ(Eval("doc('d')//person/@id = 'p9'"), "false");
}

TEST_F(EvaluatorTest, NodeComparisons) {
  EXPECT_EQ(Eval("let $p := doc('d')//person[1] return $p is $p"), "true");
  EXPECT_EQ(
      Eval("doc('d')//person[1] is doc('d')//person[2]"), "false");
  EXPECT_EQ(Eval("doc('d')//person[1] << doc('d')//person[2]"), "true");
  EXPECT_EQ(Eval("doc('d')//person[2] >> doc('d')//person[1]"), "true");
  EXPECT_EQ(Eval("() is doc('d')"), "");
}

TEST_F(EvaluatorTest, AndOrShortCircuit) {
  EXPECT_EQ(Eval("true() and false()"), "false");
  EXPECT_EQ(Eval("false() or true()"), "true");
  // The right side must not run when the left decides: an error-raising
  // right operand is skipped.
  EXPECT_EQ(Eval("false() and error(\"boom\")"), "false");
  EXPECT_EQ(Eval("true() or error(\"boom\")"), "true");
  EXPECT_EQ(EvalStatus("true() and error(\"boom\")").code(),
            StatusCode::kDynamicError);
}

TEST_F(EvaluatorTest, RangeExpression) {
  EXPECT_EQ(Eval("1 to 4"), "1 2 3 4");
  EXPECT_EQ(Eval("3 to 2"), "");
  EXPECT_EQ(Eval("2 to 2"), "2");
  EXPECT_EQ(Eval("() to 3"), "");
  EXPECT_EQ(Eval("count(1 to 100)"), "100");
}

// ---- paths ----

TEST_F(EvaluatorTest, ChildAndDescendantAxes) {
  EXPECT_EQ(Eval("count(doc('d')/site/people/person)"), "3");
  EXPECT_EQ(Eval("count(doc('d')//person)"), "3");
  EXPECT_EQ(Eval("count(doc('d')//*)"), "14");
}

TEST_F(EvaluatorTest, AttributeAxis) {
  EXPECT_EQ(Eval("string(doc('d')//item[1]/@price)"), "10");
  EXPECT_EQ(Eval("count(doc('d')//item/@*)"), "4");
}

TEST_F(EvaluatorTest, ParentAndAncestorAxes) {
  // Note //name[1] selects the first name of EVERY person (the
  // predicate applies per context node); parenthesize for a global
  // first.
  EXPECT_EQ(Eval("name((doc('d')//name)[1]/..)"), "person");
  EXPECT_EQ(Eval("count((doc('d')//name)[1]/ancestor::*)"), "3");
  EXPECT_EQ(Eval("count(doc('d')//name[1]/ancestor::*)"), "5");
  EXPECT_EQ(Eval("name((doc('d')//name)[1]/ancestor::*[1])"), "person");
  EXPECT_EQ(Eval("count((doc('d')//name)[1]/ancestor-or-self::*)"), "4");
}

TEST_F(EvaluatorTest, SiblingAxes) {
  EXPECT_EQ(Eval("name(doc('d')//person[2]/following-sibling::*)"),
            "person");
  EXPECT_EQ(Eval("name(doc('d')//person[2]/preceding-sibling::*[1])"),
            "person");
  EXPECT_EQ(Eval("string(doc('d')//person[2]"
                 "/preceding-sibling::*[1]/@id)"),
            "p1");
  EXPECT_EQ(Eval("count(doc('d')//person[1]/preceding-sibling::*)"), "0");
}

TEST_F(EvaluatorTest, FollowingAndPrecedingAxes) {
  EXPECT_EQ(Eval("count(doc('d')//people/following::item)"), "2");
  EXPECT_EQ(Eval("count(doc('d')//item[1]/preceding::person)"), "3");
  // preceding excludes ancestors.
  EXPECT_EQ(Eval("count(doc('d')//name[1]/preceding::people)"), "0");
  // Nearest-first for the reverse axis.
  EXPECT_EQ(Eval("name(doc('d')//item[1]/preceding::*[1])"), "age");
}

TEST_F(EvaluatorTest, SelfAxisAndKindTests) {
  EXPECT_EQ(Eval("count(doc('d')//person/self::person)"), "3");
  EXPECT_EQ(Eval("count(doc('d')//person/self::item)"), "0");
  EXPECT_EQ(Eval("(doc('d')//name)[1]/text()"), "Ann");
  EXPECT_EQ(Eval("count(doc('d')//node())"), "20");
  EXPECT_EQ(Eval("count(doc('d')//element(person))"), "3");
  EXPECT_EQ(Eval("count(doc('d')//item/attribute::attribute(price))"),
            "2");
}

TEST_F(EvaluatorTest, PathRootExpression) {
  // "/" requires a node context item; there is none at the top level.
  EXPECT_EQ(EvalStatus("/site").code(), StatusCode::kDynamicError);
  // Through a predicate, "." provides the focus for a rooted path.
  EXPECT_EQ(Eval("count(doc('d')//name[/site])"), "3");
  EXPECT_EQ(Eval("let $n := doc('d')//name[1] return name($n/../../..)"),
            "site");
}

TEST_F(EvaluatorTest, PositionalPredicates) {
  EXPECT_EQ(Eval("string(doc('d')//person[2]/@id)"), "p2");
  EXPECT_EQ(Eval("string(doc('d')//person[last()]/@id)"), "p3");
  EXPECT_EQ(Eval("count(doc('d')//person[position() >= 2])"), "2");
  EXPECT_EQ(Eval("doc('d')//person[9]"), "");
}

TEST_F(EvaluatorTest, BooleanPredicatesAndChaining) {
  EXPECT_EQ(Eval("string(doc('d')//person[age > 30][2]/@id)"), "p3");
  EXPECT_EQ(Eval("count(doc('d')//person[@id = 'p1' or @id = 'p3'])"),
            "2");
  EXPECT_EQ(Eval("count(doc('d')//item[@price > 15])"), "1");
}

TEST_F(EvaluatorTest, PredicateOnFilterExpr) {
  EXPECT_EQ(Eval("(10, 20, 30)[2]"), "20");
  EXPECT_EQ(Eval("(10, 20, 30)[. > 15]"), "20 30");
  EXPECT_EQ(Eval("(1 to 10)[. mod 2 = 0][last()]"), "10");
}

TEST_F(EvaluatorTest, PathResultsAreDocOrderedAndDeduplicated) {
  EXPECT_EQ(Eval("count((doc('d')//person/.., doc('d')//person)/..)"),
            "2");  // people+site parents, deduplicated
  // A parenthesized sequence keeps its order (no doc-order sort);
  // only path steps and set operations normalize.
  EXPECT_EQ(Eval("name((doc('d')//item, doc('d')//person)[1])"), "item");
  EXPECT_EQ(Eval("name((doc('d')//item | doc('d')//person)[1])"),
            "person");  // union sorts into document order
}

TEST_F(EvaluatorTest, StepOnAtomicErrors) {
  EXPECT_EQ(EvalStatus("(1)/a").code(), StatusCode::kTypeError);
}

TEST_F(EvaluatorTest, UnionIntersectExcept) {
  EXPECT_EQ(Eval("count(doc('d')//person | doc('d')//item)"), "5");
  EXPECT_EQ(Eval("count(doc('d')//person | doc('d')//person)"), "3");
  EXPECT_EQ(
      Eval("count(doc('d')//* intersect doc('d')//person)"), "3");
  EXPECT_EQ(Eval("count(doc('d')//person except doc('d')//person[2])"),
            "2");
  EXPECT_EQ(EvalStatus("1 union 2").code(), StatusCode::kTypeError);
}

// ---- FLWOR ----

TEST_F(EvaluatorTest, ForIteratesInOrder) {
  EXPECT_EQ(Eval("for $x in (1, 2, 3) return $x * 10"), "10 20 30");
  EXPECT_EQ(Eval("for $x in () return $x"), "");
}

TEST_F(EvaluatorTest, ForWithPositionVariable) {
  EXPECT_EQ(Eval("for $x at $i in (\"a\",\"b\") return ($i, $x)"),
            "1 a 2 b");
}

TEST_F(EvaluatorTest, NestedForClauses) {
  EXPECT_EQ(Eval("for $x in (1,2), $y in (10,20) return $x + $y"),
            "11 21 12 22");
}

TEST_F(EvaluatorTest, WhereFilters) {
  EXPECT_EQ(Eval("for $x in 1 to 6 where $x mod 2 = 0 return $x"),
            "2 4 6");
}

TEST_F(EvaluatorTest, OrderByAscendingDescending) {
  EXPECT_EQ(Eval("for $x in (3,1,2) order by $x return $x"), "1 2 3");
  EXPECT_EQ(Eval("for $x in (3,1,2) order by $x descending return $x"),
            "3 2 1");
  EXPECT_EQ(Eval("for $p in doc('d')//person order by $p/age return "
                 "string($p/@id)"),
            "p2 p1 p3");
}

TEST_F(EvaluatorTest, OrderByMultipleKeysAndStability) {
  EXPECT_EQ(Eval("for $x in ((\"b\",2),(\"a\",1)) return $x"), "b 2 a 1");
  EXPECT_EQ(
      Eval("for $p in ((<e k=\"1\" v=\"x\"/>, <e k=\"1\" v=\"y\"/>, "
           "<e k=\"0\" v=\"z\"/>)) "
           "order by $p/@k return string($p/@v)"),
      "z x y");  // Stable within equal keys.
}

TEST_F(EvaluatorTest, OrderByEmptyLeastGreatest) {
  EXPECT_EQ(Eval("for $x in (<a/>, <a k=\"1\"/>) "
                 "order by $x/@k return count($x/@k)"),
            "0 1");
  EXPECT_EQ(Eval("for $x in (<a/>, <a k=\"1\"/>) "
                 "order by $x/@k empty greatest return count($x/@k)"),
            "1 0");
}

TEST_F(EvaluatorTest, OrderByIncomparableKeysError) {
  EXPECT_EQ(EvalStatus("for $x in (1, \"a\") order by $x return $x").code(),
            StatusCode::kTypeError);
}

// ---- quantifiers and conditionals ----

TEST_F(EvaluatorTest, SomeEvery) {
  EXPECT_EQ(Eval("some $x in (1,2,3) satisfies $x > 2"), "true");
  EXPECT_EQ(Eval("some $x in () satisfies $x"), "false");
  EXPECT_EQ(Eval("every $x in (1,2,3) satisfies $x > 0"), "true");
  EXPECT_EQ(Eval("every $x in (1,2,3) satisfies $x > 1"), "false");
  EXPECT_EQ(Eval("every $x in () satisfies $x"), "true");
  EXPECT_EQ(Eval("some $x in (1,2), $y in (1,2) satisfies $x + $y = 4"),
            "true");
}

TEST_F(EvaluatorTest, IfThenElse) {
  EXPECT_EQ(Eval("if (1 < 2) then \"y\" else \"n\""), "y");
  EXPECT_EQ(Eval("if (()) then \"y\" else \"n\""), "n");
  EXPECT_EQ(Eval("if (doc('d')//person) then \"has\" else \"none\""),
            "has");
  // Only the chosen branch runs.
  EXPECT_EQ(Eval("if (true()) then 1 else error(\"no\")"), "1");
}

// ---- constructors ----

TEST_F(EvaluatorTest, DirectElementConstruction) {
  EXPECT_EQ(Eval("<a/>"), "<a/>");
  EXPECT_EQ(Eval("<a b=\"1\">x</a>"), "<a b=\"1\">x</a>");
  EXPECT_EQ(Eval("<a>{1 + 1}</a>"), "<a>2</a>");
  EXPECT_EQ(Eval("<a>x{1,2}y</a>"), "<a>x1 2y</a>");
  EXPECT_EQ(Eval("<a><b/><c/></a>"), "<a><b/><c/></a>");
}

TEST_F(EvaluatorTest, AttributeValueTemplates) {
  EXPECT_EQ(Eval("let $v := 5 return <a b=\"v{$v}w\"/>"),
            "<a b=\"v5w\"/>");
  EXPECT_EQ(Eval("<a b=\"{1,2,3}\"/>"), "<a b=\"1 2 3\"/>");
  EXPECT_EQ(Eval("<a b=\"{(doc('d')//name)[1]}\"/>"), "<a b=\"Ann\"/>");
}

TEST_F(EvaluatorTest, ConstructorsCopyContent) {
  // Content nodes are deep-copied: mutating the new tree leaves the
  // source untouched (checked via the source still serializing).
  EXPECT_EQ(Eval("let $src := <s><k/></s> "
                 "let $wrapped := <w>{$src/k}</w> "
                 "return (count($src/k), count($wrapped/k))"),
            "1 1");
}

TEST_F(EvaluatorTest, ComputedConstructors) {
  EXPECT_EQ(Eval("element {concat(\"a\",\"b\")} {1+1}"), "<ab>2</ab>");
  EXPECT_EQ(Eval("element foo {attribute bar {\"v\"}, \"text\"}"),
            "<foo bar=\"v\">text</foo>");
  EXPECT_EQ(Eval("text {\"hi\"}"), "hi");
  EXPECT_EQ(Eval("text {()}"), "");
  EXPECT_EQ(Eval("comment {\"note\"}"), "<!--note-->");
  EXPECT_EQ(Eval("count(document {<a/>}/a)"), "1");
}

TEST_F(EvaluatorTest, AttributeAfterContentErrors) {
  EXPECT_EQ(
      EvalStatus("element a {\"txt\", attribute b {\"v\"}}").code(),
      StatusCode::kTypeError);
}

TEST_F(EvaluatorTest, SequenceContentSpacing) {
  EXPECT_EQ(Eval("<a>{(1,2)}{(3,4)}</a>"), "<a>1 2 3 4</a>");
  EXPECT_EQ(Eval("element x {(1, 2, \"c\")}"), "<x>1 2 c</x>");
}

// ---- functions ----

TEST_F(EvaluatorTest, UserFunctions) {
  EXPECT_EQ(Eval("declare function double($x) { $x * 2 }; double(21)"),
            "42");
  EXPECT_EQ(Eval("declare function fact($n) { if ($n <= 1) then 1 else "
                 "$n * fact($n - 1) }; fact(6)"),
            "720");
  EXPECT_EQ(Eval("declare function local:f($x) { $x }; local:f(7)"), "7");
  EXPECT_EQ(Eval("declare function g() { 1 }; local:g()"), "1");
}

TEST_F(EvaluatorTest, FunctionArityMismatch) {
  EXPECT_EQ(EvalStatus("declare function f($a) { $a }; f(1, 2)").code(),
            StatusCode::kStaticError);
}

TEST_F(EvaluatorTest, UnknownFunction) {
  EXPECT_EQ(EvalStatus("no-such-fn(1)").code(), StatusCode::kStaticError);
}

TEST_F(EvaluatorTest, InfiniteRecursionIsBounded) {
  EXPECT_EQ(EvalStatus("declare function loop() { loop() }; loop()").code(),
            StatusCode::kResourceExhausted);
}

TEST_F(EvaluatorTest, FunctionsSeeGlobalsNotCallerLocals) {
  EXPECT_EQ(Eval("declare variable $g := 5; "
                 "declare function f() { $g }; "
                 "let $g2 := 9 return f()"),
            "5");
  EXPECT_EQ(
      EvalStatus("declare function f() { $local }; "
                 "let $local := 1 return f()")
          .code(),
      StatusCode::kStaticError);
}

}  // namespace
}  // namespace xqb
