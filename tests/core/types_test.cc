// Tests for the XQuery 1.0 type-expression family: instance of,
// treat as, castable as, cast as, and typeswitch.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace xqb {
namespace {

class TypesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        engine_.LoadDocumentFromString("d", "<r a=\"1\"><e>txt</e></r>")
            .ok());
  }

  std::string Eval(const std::string& query) {
    auto result = engine_.Execute(query);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return engine_.Serialize(*result);
  }

  Status EvalStatus(const std::string& query) {
    auto result = engine_.Execute(query);
    return result.ok() ? Status::OK() : result.status();
  }

  Engine engine_;
};

TEST_F(TypesTest, InstanceOfAtomicTypes) {
  EXPECT_EQ(Eval("1 instance of xs:integer"), "true");
  EXPECT_EQ(Eval("1 instance of xs:double"), "false");
  EXPECT_EQ(Eval("1.5 instance of xs:double"), "true");
  EXPECT_EQ(Eval("\"x\" instance of xs:string"), "true");
  EXPECT_EQ(Eval("true() instance of xs:boolean"), "true");
  EXPECT_EQ(Eval("1 instance of xs:anyAtomicType"), "true");
  EXPECT_EQ(Eval("data(doc('d')/r/@a) instance of xs:untypedAtomic"),
            "true");
}

TEST_F(TypesTest, InstanceOfOccurrence) {
  EXPECT_EQ(Eval("(1, 2) instance of xs:integer"), "false");
  EXPECT_EQ(Eval("(1, 2) instance of xs:integer*"), "true");
  EXPECT_EQ(Eval("(1, 2) instance of xs:integer+"), "true");
  EXPECT_EQ(Eval("() instance of xs:integer?"), "true");
  EXPECT_EQ(Eval("() instance of xs:integer+"), "false");
  EXPECT_EQ(Eval("() instance of empty-sequence()"), "true");
  EXPECT_EQ(Eval("1 instance of empty-sequence()"), "false");
  EXPECT_EQ(Eval("(1, \"a\") instance of xs:integer*"), "false");
}

TEST_F(TypesTest, InstanceOfNodeKinds) {
  EXPECT_EQ(Eval("doc('d')/r instance of element()"), "true");
  EXPECT_EQ(Eval("doc('d')/r instance of element(r)"), "true");
  EXPECT_EQ(Eval("doc('d')/r instance of element(other)"), "false");
  EXPECT_EQ(Eval("doc('d')/r/@a instance of attribute()"), "true");
  EXPECT_EQ(Eval("doc('d')/r/e/text() instance of text()"), "true");
  EXPECT_EQ(Eval("doc('d') instance of document-node()"), "true");
  EXPECT_EQ(Eval("doc('d')//node() instance of node()+"), "true");
  EXPECT_EQ(Eval("1 instance of node()"), "false");
  EXPECT_EQ(Eval("doc('d')/r instance of item()"), "true");
  EXPECT_EQ(Eval("(1, doc('d')/r) instance of item()*"), "true");
}

TEST_F(TypesTest, TreatAs) {
  EXPECT_EQ(Eval("(1 treat as xs:integer) + 1"), "2");
  EXPECT_EQ(EvalStatus("(\"x\" treat as xs:integer)").code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Eval("count(doc('d')/r treat as element())"), "1");
  EXPECT_EQ(EvalStatus("((1,2) treat as xs:integer)").code(),
            StatusCode::kTypeError);
}

TEST_F(TypesTest, CastAs) {
  EXPECT_EQ(Eval("\"42\" cast as xs:integer"), "42");
  EXPECT_EQ(Eval("(\"42\" cast as xs:integer) + 1"), "43");
  EXPECT_EQ(Eval("3.9 cast as xs:integer"), "3");
  EXPECT_EQ(Eval("-3.9 cast as xs:integer"), "-3");
  EXPECT_EQ(Eval("17 cast as xs:string"), "17");
  EXPECT_EQ(Eval("\"2.5\" cast as xs:double"), "2.5");
  EXPECT_EQ(Eval("\"true\" cast as xs:boolean"), "true");
  EXPECT_EQ(Eval("\" 0 \" cast as xs:boolean"), "false");
  EXPECT_EQ(Eval("true() cast as xs:integer"), "1");
  EXPECT_EQ(Eval("1 cast as xs:boolean"), "true");
  EXPECT_EQ(Eval("doc('d')/r/@a cast as xs:integer"), "1");
}

TEST_F(TypesTest, CastErrors) {
  EXPECT_EQ(EvalStatus("\"abc\" cast as xs:integer").code(),
            StatusCode::kDynamicError);
  EXPECT_EQ(EvalStatus("\"yes\" cast as xs:boolean").code(),
            StatusCode::kDynamicError);
  EXPECT_EQ(EvalStatus("() cast as xs:integer").code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Eval("() cast as xs:integer?"), "");
  EXPECT_EQ(EvalStatus("1 cast as xs:nosuch").code(),
            StatusCode::kStaticError);
}

TEST_F(TypesTest, CastableAs) {
  EXPECT_EQ(Eval("\"42\" castable as xs:integer"), "true");
  EXPECT_EQ(Eval("\"abc\" castable as xs:integer"), "false");
  EXPECT_EQ(Eval("\"true\" castable as xs:boolean"), "true");
  EXPECT_EQ(Eval("() castable as xs:integer"), "false");
  EXPECT_EQ(Eval("() castable as xs:integer?"), "true");
  EXPECT_EQ(Eval("(1,2) castable as xs:integer"), "false");
  EXPECT_EQ(Eval("if (\"7\" castable as xs:integer) "
                 "then \"7\" cast as xs:integer else 0"),
            "7");
}

TEST_F(TypesTest, TypeswitchSelectsFirstMatchingCase) {
  const char* query =
      "declare function describe($v) { "
      "  typeswitch ($v) "
      "    case xs:integer return \"int\" "
      "    case xs:string return \"string\" "
      "    case element() return \"element\" "
      "    case node()+ return \"nodes\" "
      "    default return \"other\" }; ";
  EXPECT_EQ(Eval(std::string(query) + "describe(1)"), "int");
  EXPECT_EQ(Eval(std::string(query) + "describe(\"x\")"), "string");
  EXPECT_EQ(Eval(std::string(query) + "describe(doc('d')/r)"), "element");
  EXPECT_EQ(Eval(std::string(query) + "describe(doc('d')//node())"),
            "nodes");
  EXPECT_EQ(Eval(std::string(query) + "describe(2.5)"), "other");
  EXPECT_EQ(Eval(std::string(query) + "describe(())"), "other");
}

TEST_F(TypesTest, TypeswitchCaseVariableBinds) {
  EXPECT_EQ(Eval("typeswitch ((1, 2, 3)) "
                 "  case $n as xs:integer+ return sum($n) "
                 "  default $d return count($d)"),
            "6");
  EXPECT_EQ(Eval("typeswitch ((\"a\", 1)) "
                 "  case $n as xs:integer+ return sum($n) "
                 "  default $d return count($d)"),
            "2");
}

TEST_F(TypesTest, TypeswitchOnlyTakenBranchRuns) {
  EXPECT_EQ(Eval("typeswitch (1) "
                 "  case xs:integer return \"ok\" "
                 "  default return error(\"must not run\")"),
            "ok");
}

TEST_F(TypesTest, TypeswitchWithUpdates) {
  // The taken branch's updates land in the enclosing snap scope.
  EXPECT_EQ(Eval("typeswitch (doc('d')/r) "
                 "  case element(r) return "
                 "    (snap insert { <tagged/> } into { doc('d')/r }, "
                 "     \"tagged\") "
                 "  default return \"no\""),
            "tagged");
  EXPECT_EQ(Eval("count(doc('d')/r/tagged)"), "1");
}

TEST_F(TypesTest, ParserShapes) {
  engine_.BindVariable("x", Sequence{});
  auto prepared = engine_.Prepare("$x instance of element(p)*");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_EQ(prepared->program.body->DebugString(),
            "(instance-of element(p)* (var x))");
  prepared = engine_.Prepare(
      "typeswitch (1) case $v as xs:integer return $v default return 0");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_EQ(prepared->program.body->DebugString(),
            "(typeswitch (case v xs:integer) (default) (int 1) (var v) "
            "(int 0))");
}

TEST_F(TypesTest, KeywordsStillUsableAsPathNames) {
  // "instance", "cast", "treat" parse as name tests when not followed
  // by their partner keyword.
  ASSERT_TRUE(
      engine_.LoadDocumentFromString("k", "<r><instance/><cast/></r>")
          .ok());
  EXPECT_EQ(Eval("count(doc('k')/r/instance)"), "1");
  EXPECT_EQ(Eval("count(doc('k')/r/cast)"), "1");
}

}  // namespace
}  // namespace xqb
