// E10: normalization to core (Section 3.3) — implicit deep copy around
// insert/replace sources, `into` -> `as last into`, snap sugar
// desugaring, and recursion into prolog declarations.

#include <gtest/gtest.h>

#include "core/normalize.h"
#include "frontend/parser.h"

namespace xqb {
namespace {

std::string Normalized(const char* query) {
  auto expr = ParseExpression(query);
  EXPECT_TRUE(expr.ok()) << expr.status();
  ExprPtr e = std::move(*expr);
  NormalizeExpr(&e);
  return e->DebugString();
}

TEST(Normalize, InsertGetsCopyAndAsLast) {
  // The paper's rule: [insert {E1} into {E2}] =
  //   insert {copy{[E1]}} as last into {[E2]}.
  EXPECT_EQ(Normalized("insert { $n } into { $t }"),
            "(insert as-last-into (copy (var n)) (var t))");
}

TEST(Normalize, InsertBeforeAfterKeepPosition) {
  EXPECT_EQ(Normalized("insert { $n } before { $t }"),
            "(insert before (copy (var n)) (var t))");
  EXPECT_EQ(Normalized("insert { $n } after { $t }"),
            "(insert after (copy (var n)) (var t))");
  EXPECT_EQ(Normalized("insert { $n } as first into { $t }"),
            "(insert as-first-into (copy (var n)) (var t))");
}

TEST(Normalize, ReplaceCopiesSecondArgument) {
  EXPECT_EQ(Normalized("replace { $t } with { $n }"),
            "(replace (var t) (copy (var n)))");
}

TEST(Normalize, ExistingCopyIsNotDoubled) {
  EXPECT_EQ(Normalized("insert { copy { $n } } into { $t }"),
            "(insert as-last-into (copy (var n)) (var t))");
}

TEST(Normalize, DeleteAndRenameUnchanged) {
  EXPECT_EQ(Normalized("delete { $t }"), "(delete (var t))");
  EXPECT_EQ(Normalized("rename { $t } to { \"n\" }"),
            "(rename (var t) (string \"n\"))");
}

TEST(Normalize, SnapSugarBecomesExplicitSnap) {
  EXPECT_EQ(Normalized("snap delete { $t }"),
            "(snap default (delete (var t)))");
  // The sugar wraps the *normalized* update.
  EXPECT_EQ(Normalized("snap insert { $n } into { $t }"),
            "(snap default (insert as-last-into (copy (var n)) (var t)))");
}

TEST(Normalize, RecursesIntoSubexpressions) {
  EXPECT_EQ(
      Normalized("if ($c) then insert { $n } into { $t } else ()"),
      "(if (var c) (insert as-last-into (copy (var n)) (var t)) (empty))");
  EXPECT_EQ(Normalized("for $x in $s return insert { $x } into { $t }"),
            "(flwor (for x (var s)) (insert as-last-into (copy (var x)) "
            "(var t)))");
}

TEST(Normalize, RecursesIntoFlworClauses) {
  EXPECT_EQ(
      Normalized("let $y := insert { $n } into { $t } return $y"),
      "(flwor (let y (insert as-last-into (copy (var n)) (var t))) "
      "(var y))");
}

TEST(Normalize, ProgramNormalizesDeclarations) {
  auto program = ParseProgram(
      "declare variable $v := insert { $a } into { $b }; "
      "declare function f() { insert { $c } into { $d } }; "
      "1");
  ASSERT_TRUE(program.ok());
  NormalizeProgram(&*program);
  EXPECT_EQ(program->variables[0].init->DebugString(),
            "(insert as-last-into (copy (var a)) (var b))");
  EXPECT_EQ(program->functions[0].body->DebugString(),
            "(insert as-last-into (copy (var c)) (var d))");
}

TEST(Normalize, IsIdempotent) {
  auto expr = ParseExpression("snap insert { $n } into { $t }");
  ASSERT_TRUE(expr.ok());
  ExprPtr e = std::move(*expr);
  NormalizeExpr(&e);
  std::string once = e->DebugString();
  NormalizeExpr(&e);
  EXPECT_EQ(e->DebugString(), once);
}

}  // namespace
}  // namespace xqb
