// Observability suite: ExecStats collection (phase timings, update-kind
// breakdown, rewrite fires), stats determinism across thread counts,
// stale-stats reset on failed runs, EXPLAIN ANALYZE plan annotation,
// and the Chrome trace_event exporter.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "base/trace.h"
#include "core/engine.h"
#include "xmark/generator.h"

namespace xqb {
namespace {

constexpr const char* kDoc =
    "<r>"
    "<item id='a'><v>1</v></item>"
    "<item id='b'><v>2</v></item>"
    "<item id='c'><v>3</v></item>"
    "<item id='d'><v>4</v></item>"
    "</r>";

// ---------------------------------------------------------------------
// Satellite 1: a failed run must never report the previous run's stats.

TEST(StatsReset, FailedRunClearsPreviousStats) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", kDoc).ok());
  ExecOptions options;
  options.collect_stats = true;
  auto ok = engine.Execute(
      "snap { insert { <x/> } into { doc('d')/r } }", options);
  ASSERT_TRUE(ok.ok());
  ASSERT_GT(engine.last_stats().updates_applied, 0);
  ASSERT_GT(engine.last_stats().snaps_applied, 0);
  ASSERT_GT(engine.last_stats().updates_emitted, 0);

  // Fails at evaluation time (unknown document), after Run has started.
  auto failed = engine.Execute("doc('no-such-document')", options);
  ASSERT_FALSE(failed.ok());
  const ExecStats& stats = engine.last_stats();
  EXPECT_EQ(stats.updates_applied, 0);
  EXPECT_EQ(stats.updates_emitted, 0);
  EXPECT_EQ(stats.snaps_applied, 0);
  EXPECT_EQ(stats.inserts_applied, 0);
  EXPECT_EQ(stats.result_cardinality, 0);
  EXPECT_FALSE(stats.used_algebra);
  EXPECT_FALSE(engine.last_used_algebra());
  EXPECT_TRUE(engine.last_plan().empty());
  EXPECT_TRUE(stats.plan.empty());
}

TEST(StatsReset, OptimizedRunAfterInterpretedClearsPlanAndBack) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", kDoc).ok());
  ExecOptions optimized;
  optimized.optimize = true;
  ASSERT_TRUE(engine.Execute("for $x in doc('d')/r/item return $x",
                             optimized)
                  .ok());
  EXPECT_TRUE(engine.last_used_algebra());
  EXPECT_FALSE(engine.last_plan().empty());
  ASSERT_TRUE(engine.Execute("1 + 1").ok());
  EXPECT_FALSE(engine.last_used_algebra());
  EXPECT_TRUE(engine.last_plan().empty());
}

// ---------------------------------------------------------------------
// Detailed collection: phases, update kinds, cardinality.

TEST(StatsCollect, PhaseTimingsAndCountersFilled) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", kDoc).ok());
  ExecOptions options;
  options.collect_stats = true;
  auto result = engine.Execute(
      "for $x in doc('d')/r/item return string($x/@id)", options);
  ASSERT_TRUE(result.ok());
  (void)engine.Serialize(*result);
  const ExecStats& stats = engine.last_stats();
  EXPECT_TRUE(stats.collected);
  EXPECT_GT(stats.parse_ns, 0);
  EXPECT_GE(stats.normalize_ns, 0);
  EXPECT_GE(stats.static_check_ns, 0);
  EXPECT_GT(stats.eval_ns, 0);
  EXPECT_GT(stats.serialize_ns, 0);
  EXPECT_EQ(stats.result_cardinality, 4);
  EXPECT_GT(stats.guard_steps, 0);
  // Summary and JSON render without crashing and carry the phase line.
  EXPECT_NE(stats.Summary().find("phases (ms):"), std::string::npos);
  EXPECT_NE(stats.ToJson().find("\"eval_ns\":"), std::string::npos);
}

TEST(StatsCollect, UpdateKindBreakdown) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", kDoc).ok());
  ExecOptions options;
  options.collect_stats = true;
  auto result = engine.Execute(
      "snap { insert { <x/> } into { doc('d')/r }, "
      "       delete { doc('d')/r/item[@id='a'] }, "
      "       rename { doc('d')/r/item[@id='b'] } to { \"thing\" } }",
      options);
  ASSERT_TRUE(result.ok());
  const ExecStats& stats = engine.last_stats();
  EXPECT_EQ(stats.inserts_applied, 1);
  EXPECT_EQ(stats.deletes_applied, 1);
  EXPECT_EQ(stats.renames_applied, 1);
  EXPECT_EQ(stats.updates_applied, 3);
  EXPECT_EQ(stats.updates_emitted, 3);
  EXPECT_GE(stats.snap_depth_max, 1);
}

TEST(StatsCollect, DisabledCollectionStillFillsCheapCounters) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", kDoc).ok());
  auto result = engine.Execute(
      "snap { insert { <x/> } into { doc('d')/r } }");
  ASSERT_TRUE(result.ok());
  const ExecStats& stats = engine.last_stats();
  EXPECT_FALSE(stats.collected);
  EXPECT_EQ(stats.updates_applied, 1);
  EXPECT_GT(stats.snaps_applied, 0);
  // Detailed (opt-in) fields stay zero when collection is off.
  EXPECT_EQ(stats.updates_emitted, 0);
  EXPECT_EQ(stats.inserts_applied, 0);
}

TEST(StatsCollect, GarbageCollectionFreesAreCounted) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", kDoc).ok());
  // Constructed elements are unreachable from documents/variables after
  // the run, so GC reclaims them.
  ASSERT_TRUE(engine.Execute("<tmp><a/><b/></tmp>").ok());
  const size_t freed = engine.CollectGarbage();
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(engine.last_stats().gc_freed, static_cast<int64_t>(freed));
}

// ---------------------------------------------------------------------
// Satellite 3: counters are thread-count invariant; timings sane.

TEST(StatsDeterminism, CountersIdenticalAcrossThreadCounts) {
  const std::string query =
      "snap { for $x in doc('d')/r/item "
      "       return insert { <sum>{sum(for $j in 1 to 40 return $j * "
      "number($x/v))}</sum> } into { $x } }";
  ExecStats collected[2];
  int64_t regions[2] = {0, 0};
  int i = 0;
  for (int threads : {1, 8}) {
    Engine engine;
    ASSERT_TRUE(engine.LoadDocumentFromString("d", kDoc).ok());
    ExecOptions options;
    options.collect_stats = true;
    options.threads = threads;
    auto result = engine.Execute(query, options);
    ASSERT_TRUE(result.ok());
    collected[i] = engine.last_stats();
    regions[i] = engine.last_parallel_regions();
    ++i;
  }
  EXPECT_EQ(regions[0], 0);
  EXPECT_GT(regions[1], 0) << "threads=8 never engaged the pool";
  EXPECT_EQ(collected[0].updates_emitted, collected[1].updates_emitted);
  EXPECT_EQ(collected[0].updates_applied, collected[1].updates_applied);
  EXPECT_EQ(collected[0].inserts_applied, collected[1].inserts_applied);
  EXPECT_EQ(collected[0].snaps_applied, collected[1].snaps_applied);
  EXPECT_EQ(collected[0].snap_depth_max, collected[1].snap_depth_max);
  EXPECT_EQ(collected[0].result_cardinality,
            collected[1].result_cardinality);
  // Pool accounting only exists on the parallel run.
  EXPECT_EQ(collected[0].pool_jobs, 0);
  EXPECT_GT(collected[1].pool_jobs, 0);
  EXPECT_GE(collected[1].pool_busy_ns, 0);
  EXPECT_GE(collected[1].pool_idle_ns, 0);
}

// ---------------------------------------------------------------------
// Tentpole: EXPLAIN ANALYZE for the algebra executor.

TEST(ExplainAnalyze, AnnotatedPlanCarriesPerOperatorCounters) {
  Engine engine;
  XMarkParams params;
  params.factor = 0.05;
  engine.RegisterDocument("auction",
                          GenerateXMarkDocument(&engine.store(), params));
  ExecOptions options;
  options.optimize = true;
  options.collect_stats = true;
  auto result = engine.Execute(
      "for $p in doc('auction')//person "
      "let $a := for $t in doc('auction')//closed_auction "
      "          where $t/buyer/@person = $p/@id return $t "
      "return <r id=\"{$p/@id}\" n=\"{count($a)}\"/>",
      options);
  ASSERT_TRUE(result.ok());
  const ExecStats& stats = engine.last_stats();
  ASSERT_TRUE(stats.used_algebra);
  // The plain plan stays un-annotated; the stats plan is annotated.
  EXPECT_EQ(engine.last_plan().find("[calls="), std::string::npos);
  EXPECT_NE(stats.plan.find("[calls="), std::string::npos);
  EXPECT_NE(stats.plan.find("rows="), std::string::npos);
  EXPECT_NE(stats.plan.find("self="), std::string::npos);
  EXPECT_NE(stats.plan.find("MapToItem"), std::string::npos);
  // Satellite 2: the optimizer's rule fires surface in the stats.
  EXPECT_GE(stats.rw_group_joins, 1);
  EXPECT_GT(stats.compile_ns, 0);
  EXPECT_GE(stats.rewrite_ns, 0);
}

TEST(ExplainAnalyze, NotCollectedWithoutOptIn) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", kDoc).ok());
  ExecOptions options;
  options.optimize = true;
  ASSERT_TRUE(
      engine.Execute("for $x in doc('d')/r/item return $x", options)
          .ok());
  EXPECT_TRUE(engine.last_stats().plan.empty());
  EXPECT_FALSE(engine.last_plan().empty());
}

// Satellite 2: Prepare exposes front-end phase costs.
TEST(PreparedQueryStats, FrontEndPhasesTimed) {
  Engine engine;
  auto prepared = engine.Prepare("for $i in 1 to 3 return $i + 1");
  ASSERT_TRUE(prepared.ok());
  EXPECT_GT(prepared->parse_ns, 0);
  EXPECT_GE(prepared->normalize_ns, 0);
  EXPECT_GE(prepared->static_check_ns, 0);
  // Run carries them into the stats of every execution.
  ASSERT_TRUE(engine.Run(*prepared).ok());
  EXPECT_EQ(engine.last_stats().parse_ns, prepared->parse_ns);
}

// ---------------------------------------------------------------------
// Tracer unit tests.

TEST(TracerTest, LanesNamedAndEventsExported) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "outer", "phase");
    std::thread worker([&tracer] {
      const int64_t t0 = tracer.NowNs();
      tracer.RecordSpan("inner-work", "parallel", t0, tracer.NowNs());
    });
    worker.join();
  }
  tracer.RecordInstant("mark", "test");
  EXPECT_EQ(tracer.event_count(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"worker-1\""), std::string::npos);
  EXPECT_NE(json.find("\"inner-work\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(TracerTest, BoundedBufferCountsDrops) {
  Tracer tracer(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) tracer.RecordInstant("e", "test");
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
}

TEST(TracerTest, JsonEscapesSpanNames) {
  Tracer tracer;
  tracer.RecordInstant("quote\"back\\slash\nnewline", "test");
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("quote\\\"back\\\\slash\\nnewline"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end trace export through ExecOptions::trace_path.

TEST(TraceExport, RunWritesLoadableChromeTrace) {
  const std::string path =
      ::testing::TempDir() + "/xqb_stats_test_trace.json";
  std::remove(path.c_str());
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", kDoc).ok());
  ExecOptions options;
  options.optimize = true;
  options.collect_stats = true;
  options.trace_path = path;
  ASSERT_TRUE(
      engine.Execute("snap { for $x in doc('d')/r/item "
                     "return insert { <y/> } into { $x } }",
                     options)
          .ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file not written: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"eval\""), std::string::npos);
  EXPECT_NE(json.find("\"snap-apply\""), std::string::npos);
  const size_t last = json.find_last_not_of(" \n");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json[last], '}');
  std::remove(path.c_str());
}

TEST(TraceExport, UnwritableTracePathFailsTheRun) {
  Engine engine;
  ExecOptions options;
  options.trace_path = "/nonexistent-dir-xqb/trace.json";
  auto result = engine.Execute("1 + 1", options);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace xqb
