// Tests for the fn:id builtin and its version-invalidated index.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace xqb {
namespace {

class IdIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .LoadDocumentFromString(
                        "d",
                        "<r><p id=\"a\"><sub id=\"x\"/></p>"
                        "<p id=\"b\"/><q id=\"a\"/></r>")
                    .ok());
  }

  std::string Run(const std::string& query) {
    auto result = engine_.Execute(query);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return engine_.Serialize(*result);
  }

  Engine engine_;
};

TEST_F(IdIndexTest, LookupByIdValue) {
  EXPECT_EQ(Run("count(id(\"a\", doc('d')))"), "2");
  EXPECT_EQ(Run("name(id(\"b\", doc('d')))"), "p");
  EXPECT_EQ(Run("name(id(\"x\", doc('d')))"), "sub");
  EXPECT_EQ(Run("count(id(\"missing\", doc('d')))"), "0");
}

TEST_F(IdIndexTest, MultipleIdsAndDocOrder) {
  EXPECT_EQ(Run("for $e in id((\"b\", \"a\"), doc('d')) "
                "return string($e/@id)"),
            "a b a");  // Document order, not argument order.
}

TEST_F(IdIndexTest, ContextItemForm) {
  EXPECT_EQ(Run("count(doc('d')/r[count(id(\"a\")) = 2])"), "1");
}

TEST_F(IdIndexTest, AnyTreeNodeWorksAsContext) {
  // The index keys on the tree root; any node of the tree will do.
  EXPECT_EQ(Run("name(id(\"b\", (doc('d')//sub)[1]))"), "p");
}

TEST_F(IdIndexTest, InvalidatedByUpdates) {
  EXPECT_EQ(Run("count(id(\"new\", doc('d')))"), "0");
  EXPECT_EQ(Run("snap insert { <n id=\"new\"/> } into { doc('d')/r }"),
            "");
  EXPECT_EQ(Run("name(id(\"new\", doc('d')))"), "n");
  EXPECT_EQ(Run("snap delete { id(\"new\", doc('d')) }"), "");
  EXPECT_EQ(Run("count(id(\"new\", doc('d')))"), "0");
}

TEST_F(IdIndexTest, InvalidatedByAttributeRename) {
  EXPECT_EQ(Run("count(id(\"a\", doc('d')))"), "2");
  // Renaming the @id attribute away removes the element from the index.
  EXPECT_EQ(Run("snap rename { (doc('d')//q)[1]/@id } to { \"key\" }"),
            "");
  EXPECT_EQ(Run("count(id(\"a\", doc('d')))"), "1");
}

TEST_F(IdIndexTest, UsableInsideUpdatePrograms) {
  EXPECT_EQ(Run("snap insert { <hit/> } into { id(\"b\", doc('d')) }"),
            "");
  EXPECT_EQ(Run("count(id(\"b\", doc('d'))/hit)"), "1");
}

TEST_F(IdIndexTest, SeparateTreesSeparateIndexes) {
  ASSERT_TRUE(
      engine_.LoadDocumentFromString("e", "<r><z id=\"a\"/></r>").ok());
  EXPECT_EQ(Run("count(id(\"a\", doc('d')))"), "2");
  EXPECT_EQ(Run("name(id(\"a\", doc('e')))"), "z");
}

}  // namespace
}  // namespace xqb
