// An XMark update workload in XQuery!: the standard update-benchmark
// operations (insert bid, close auction, delete history, rename,
// bulk-load) expressed with snap, run against the generated document
// and verified by counting invariants.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "xmark/generator.h"

namespace xqb {
namespace {

class XMarkUpdatesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    params.factor = 0.2;
    params.seed = 7;
    NodeId doc = GenerateXMarkDocument(&engine_.store(), params);
    engine_.RegisterDocument("auction", doc);
  }

  std::string Run(const std::string& query) {
    auto result = engine_.Execute(query);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return engine_.Serialize(*result);
  }

  int Count(const std::string& path) {
    return std::stoi(Run("count(" + path + ")"));
  }

  Engine engine_;
};

TEST_F(XMarkUpdatesTest, U1InsertBidOnEveryOpenAuction) {
  int auctions = Count("doc('auction')//open_auction");
  int bidders = Count("doc('auction')//bidder");
  EXPECT_EQ(Run("for $a in doc('auction')//open_auction return "
                "insert { <bidder><date>01/01/2001</date>"
                "<personref person=\"person0\"/>"
                "<increase>13.37</increase></bidder> } into { $a }"),
            "");
  EXPECT_EQ(Count("doc('auction')//bidder"), bidders + auctions);
  // Every auction gained exactly one (the new one is last).
  EXPECT_EQ(Count("doc('auction')//open_auction"
                  "[bidder[last()]/increase = '13.37']"),
            auctions);
}

TEST_F(XMarkUpdatesTest, U2CloseAuctions) {
  // Move every open auction with 3+ bids into closed_auctions,
  // re-shaped, and delete the originals — all in one snapshot.
  int closed_before = Count("doc('auction')//closed_auction");
  int to_close = Count("doc('auction')//open_auction[count(bidder) >= 3]");
  ASSERT_GT(to_close, 0);
  EXPECT_EQ(
      Run("let $site := doc('auction')/site return "
          "for $a in $site/open_auctions/open_auction"
          "[count(bidder) >= 3] return ("
          "  insert { <closed_auction>"
          "    <seller person=\"{$a/seller/@person}\"/>"
          "    <buyer person=\"{$a/bidder[last()]/personref/@person}\"/>"
          "    <itemref item=\"{$a/itemref/@item}\"/>"
          "    <price>{string($a/current)}</price>"
          "  </closed_auction> } into { $site/closed_auctions }, "
          "  delete { $a } )"),
      "");
  EXPECT_EQ(Count("doc('auction')//closed_auction"),
            closed_before + to_close);
  EXPECT_EQ(Count("doc('auction')//open_auction[count(bidder) >= 3]"), 0);
}

TEST_F(XMarkUpdatesTest, U3RenameCategoryTags) {
  int items = Count("doc('auction')//item");
  EXPECT_EQ(Run("for $i in doc('auction')//item return "
                "rename { $i } to { \"product\" }"),
            "");
  EXPECT_EQ(Count("doc('auction')//item"), 0);
  EXPECT_EQ(Count("doc('auction')//product"), items);
}

TEST_F(XMarkUpdatesTest, U4DeleteClosedAuctionHistory) {
  ASSERT_GT(Count("doc('auction')//closed_auction"), 0);
  EXPECT_EQ(Run("snap delete { doc('auction')//closed_auction }"), "");
  EXPECT_EQ(Count("doc('auction')//closed_auction"), 0);
  // The container stays.
  EXPECT_EQ(Count("doc('auction')/site/closed_auctions"), 1);
  size_t freed = engine_.CollectGarbage();
  EXPECT_GT(freed, 0u);
}

TEST_F(XMarkUpdatesTest, U5ReplacePrices) {
  // Apply a 10% increase to every closed price via replace.
  double before = std::stod(
      Run("sum(doc('auction')//closed_auction/price)"));
  EXPECT_EQ(Run("for $p in doc('auction')//closed_auction/price return "
                "replace { $p/text() } with { number($p) * 1.1 }"),
            "");
  double after = std::stod(
      Run("sum(doc('auction')//closed_auction/price)"));
  EXPECT_NEAR(after, before * 1.1, before * 0.001);
}

TEST_F(XMarkUpdatesTest, U6BulkAppendPersons) {
  int persons = Count("doc('auction')//person");
  EXPECT_EQ(Run("let $people := doc('auction')/site/people return "
                "for $i in 1 to 25 return "
                "insert { <person id=\"new{$i}\">"
                "<name>Bulk Loaded</name></person> } into { $people }"),
            "");
  EXPECT_EQ(Count("doc('auction')//person"), persons + 25);
  EXPECT_EQ(Run("string(id('new7', doc('auction'))/name)"),
            "Bulk Loaded");
}

TEST_F(XMarkUpdatesTest, MixedWorkloadKeepsInvariants) {
  // Interleave inserts, deletes and renames across several snapshots,
  // then check referential integrity of what remains.
  EXPECT_EQ(Run("snap { for $a in doc('auction')//open_auction"
                "[position() <= 5] return delete { $a } }"),
            "");
  EXPECT_EQ(Run("for $p in doc('auction')//person[position() <= 10] "
                "return insert { <verified/> } into { $p }"),
            "");
  EXPECT_EQ(Count("doc('auction')//person/verified"), 10);
  // Remaining bidders still reference existing persons.
  EXPECT_EQ(Count("doc('auction')//open_auction/bidder/personref"
                  "[not(@person = doc('auction')//person/@id)]"),
            0);
}

}  // namespace
}  // namespace xqb
