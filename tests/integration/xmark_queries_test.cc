// An XMark-style query suite adapted to the generated auction document
// [23]: read-only benchmark queries (Q1/Q2/Q5/Q8/Q20 analogues) checked
// for exact results at a fixed seed/factor, each run both interpreted
// and through the algebra to pin the two engines together.

#include <gtest/gtest.h>

#include "base/string_util.h"
#include "core/engine.h"
#include "xmark/generator.h"

namespace xqb {
namespace {

class XMarkQueriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    params.factor = 0.2;  // 51 persons, 43 items, 24 open, 19 closed.
    params.seed = 42;
    NodeId doc = GenerateXMarkDocument(&engine_.store(), params);
    engine_.RegisterDocument("auction", doc);
  }

  /// Runs interpreted and optimized; asserts they agree; returns the
  /// serialized result.
  std::string Run(const std::string& query) {
    ExecOptions interpreted;
    auto r1 = engine_.Execute(query, interpreted);
    if (!r1.ok()) return "ERROR: " + r1.status().ToString();
    std::string v1 = engine_.Serialize(*r1);
    ExecOptions optimized;
    optimized.optimize = true;
    auto r2 = engine_.Execute(query, optimized);
    if (!r2.ok()) return "OPT-ERROR: " + r2.status().ToString();
    EXPECT_EQ(v1, engine_.Serialize(*r2)) << query;
    return v1;
  }

  Engine engine_;
};

TEST_F(XMarkQueriesTest, Q1NamedPersonLookup) {
  // XMark Q1: the name of the person with a given id.
  std::string name = Run(
      "for $b in doc('auction')/site/people/person[@id = 'person0'] "
      "return string($b/name)");
  EXPECT_FALSE(name.empty());
  EXPECT_EQ(name, Run("string(id('person0', doc('auction'))/name)"));
}

TEST_F(XMarkQueriesTest, Q2OpeningBids) {
  // XMark Q2: initial increases of all open auctions.
  EXPECT_EQ(Run("count(for $b in doc('auction')//open_auction "
                "return $b/bidder[1]/increase)"),
            "24");
}

TEST_F(XMarkQueriesTest, Q5HighSales) {
  // XMark Q5: number of sold items above a threshold.
  std::string high = Run(
      "count(for $i in doc('auction')//closed_auction "
      "where $i/price >= 250 return $i/price)");
  std::string low = Run(
      "count(for $i in doc('auction')//closed_auction "
      "where $i/price < 250 return $i/price)");
  EXPECT_EQ(std::stoi(high) + std::stoi(low), 19);
}

TEST_F(XMarkQueriesTest, Q8PurchasesPerPerson) {
  // XMark Q8: items bought per person (the paper's Section 4 carrier).
  std::string result = Run(
      "for $p in doc('auction')//person "
      "let $a := for $t in doc('auction')//closed_auction "
      "          where $t/buyer/@person = $p/@id return $t "
      "order by $p/@id "
      "return count($a)");
  // The total over all persons must equal the closed auction count.
  int total = 0;
  for (const std::string& piece : StrSplit(result, ' ')) {
    total += std::stoi(piece);
  }
  EXPECT_EQ(total, 19);
}

TEST_F(XMarkQueriesTest, Q20Demographics) {
  // XMark Q20 analogue: partition people by profile presence.
  std::string with_income = Run(
      "count(doc('auction')//person[profile/@income])");
  std::string without = Run(
      "count(doc('auction')//person[not(profile/@income)])");
  EXPECT_EQ(std::stoi(with_income) + std::stoi(without), 51);
}

TEST_F(XMarkQueriesTest, BidderCountsAreConsistent) {
  EXPECT_EQ(Run("sum(for $a in doc('auction')//open_auction "
                "return count($a/bidder))"),
            Run("count(doc('auction')//bidder)"));
}

TEST_F(XMarkQueriesTest, JoinThroughItemRef) {
  // Items referenced by closed auctions resolve to region items.
  EXPECT_EQ(Run("count(for $t in doc('auction')//closed_auction "
                "return doc('auction')//item[@id = $t/itemref/@item])"),
            Run("count(for $t in doc('auction')//closed_auction "
                "return id($t/itemref/@item, doc('auction')))"));
}

TEST_F(XMarkQueriesTest, DeterministicAcrossRuns) {
  std::string first = Run("string-join(doc('auction')//person/@id, \",\")");
  EXPECT_EQ(first, Run("string-join(doc('auction')//person/@id, \",\")"));
}

}  // namespace
}  // namespace xqb
