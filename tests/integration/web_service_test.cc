// E4: the Section 2 Web-service use case end-to-end — get_item with
// logging inside a function, log rotation through explicit snaps, and
// the nested-snap counter stamping entry ids.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "xmark/generator.h"

namespace xqb {
namespace {

class WebServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    params.factor = 0.1;
    NodeId auction = GenerateXMarkDocument(&engine_.store(), params);
    engine_.RegisterDocument("auction", auction);
    ASSERT_TRUE(engine_.LoadDocumentFromString("log", "<log/>").ok());
    ASSERT_TRUE(
        engine_.LoadDocumentFromString("archive", "<archive/>").ok());
  }

  /// The service module with `calls` invocations of get_item.
  std::string ServiceModule(int calls, int maxlog) {
    return "declare variable $maxlog := " + std::to_string(maxlog) +
           "; "
           "declare variable $d := element counter { 0 }; "
           "declare function nextid() { "
           "  snap { replace { $d/text() } with { $d + 1 }, "
           "         string($d + 1) } }; "
           "declare function archivelog() { "
           "  snap insert { <archived "
           "entries=\"{count(doc('log')/log/logentry)}\"/> } "
           "       into { doc('archive')/archive } }; "
           "declare function get_item($itemid, $userid) { "
           "  let $item := doc('auction')//item[@id = $itemid] "
           "  return ( "
           "    let $name := doc('auction')//person[@id = $userid]/name "
           "    return ( "
           "      snap insert { <logentry id=\"{nextid()}\" "
           "                              user=\"{$name}\" "
           "                              itemid=\"{$itemid}\"/> } "
           "           into { doc('log')/log }, "
           "      if (count(doc('log')/log/logentry) >= $maxlog) "
           "      then (archivelog(), "
           "            snap delete { doc('log')/log/logentry }) "
           "      else () ), "
           "    $item ) }; "
           "for $i in 0 to " +
           std::to_string(calls - 1) +
           " return get_item(concat(\"item\", $i), "
           "                 concat(\"person\", $i))";
  }

  std::string Run(const std::string& query) {
    auto result = engine_.Execute(query);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return engine_.Serialize(*result);
  }

  Engine engine_;
};

TEST_F(WebServiceTest, GetItemReturnsValueAndLogs) {
  // "expressions that have a side-effect (the log entry insertion) and
  // also return a value (the item itself)".
  auto result = engine_.Execute(ServiceModule(1, 100));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 1u);  // The item element came back.
  EXPECT_EQ(Run("count(doc('log')/log/logentry)"), "1");
  EXPECT_EQ(Run("string(doc('log')/log/logentry/@itemid)"), "item0");
  // The user attribute resolved the person's name.
  EXPECT_NE(Run("string(doc('log')/log/logentry/@user)"), "");
}

TEST_F(WebServiceTest, LogEntriesCarryMonotoneIds) {
  ASSERT_TRUE(engine_.Execute(ServiceModule(4, 100)).ok());
  EXPECT_EQ(Run("for $e in doc('log')/log/logentry return string($e/@id)"),
            "1 2 3 4");
}

TEST_F(WebServiceTest, RotationArchivesEveryMaxlogEntries) {
  ASSERT_TRUE(engine_.Execute(ServiceModule(10, 4)).ok());
  // 10 calls with maxlog 4: rotations after entries 4 and 8, leaving 2.
  EXPECT_EQ(Run("count(doc('archive')/archive/archived)"), "2");
  EXPECT_EQ(Run("doc('archive')/archive/archived/string(@entries)"),
            "4 4");
  EXPECT_EQ(Run("count(doc('log')/log/logentry)"), "2");
  // Ids keep counting across rotations.
  EXPECT_EQ(Run("for $e in doc('log')/log/logentry return string($e/@id)"),
            "9 10");
}

TEST_F(WebServiceTest, ItemsAreStillReturnedWithLoggingOn) {
  auto result = engine_.Execute(ServiceModule(5, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
  for (const Item& item : *result) {
    ASSERT_TRUE(item.is_node());
    EXPECT_EQ(engine_.store().NameOf(item.node()), "item");
  }
}

TEST_F(WebServiceTest, StateAccumulatesAcrossQueries) {
  // Sessions: each Execute is one service batch; the log persists.
  ASSERT_TRUE(engine_.Execute(ServiceModule(2, 100)).ok());
  EXPECT_EQ(Run("count(doc('log')/log/logentry)"), "2");
  ASSERT_TRUE(engine_.Execute(ServiceModule(3, 100)).ok());
  EXPECT_EQ(Run("count(doc('log')/log/logentry)"), "5");
}

TEST_F(WebServiceTest, UnknownUserLogsEmptyName) {
  ASSERT_TRUE(engine_
                  .Execute(
                      "declare function get($u) { "
                      "snap insert { <logentry "
                      "user=\"{doc('auction')//person[@id=$u]/name}\"/> } "
                      "into { doc('log')/log } }; "
                      "get(\"person999999\")")
                  .ok());
  EXPECT_EQ(Run("string(doc('log')/log/logentry/@user)"), "");
}

}  // namespace
}  // namespace xqb
