// Robustness suites: adversarial inputs must produce error statuses,
// never crashes — deep nesting, truncated programs, random mutations of
// valid queries, resource-governor trips (recursion, step, store-growth
// and deadline budgets, host cancellation) — plus a seed-swept
// random-FLWOR equivalence property between the interpreter and the
// algebra.

#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <string>
#include <thread>

#include "core/engine.h"
#include "frontend/parser.h"
#include "xml/xml_parser.h"

namespace xqb {
namespace {

TEST(Robustness, DeeplyNestedParensAreRejectedNotCrashed) {
  std::string query(2000, '(');
  query += "1";
  query += std::string(2000, ')');
  auto result = ParseExpression(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(Robustness, ModeratelyNestedParensStillParse) {
  std::string query(100, '(');
  query += "1";
  query += std::string(100, ')');
  EXPECT_TRUE(ParseExpression(query).ok());
}

TEST(Robustness, DeeplyNestedConstructorsAreRejected) {
  std::string open, close;
  for (int i = 0; i < 1000; ++i) {
    open += "<a>";
    close = "</a>" + close;
  }
  auto result = ParseExpression(open + close);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(Robustness, DeepUnaryChainsParseIteratively) {
  std::string query(50000, '-');
  query += "1";
  auto result = ParseExpression(query);
  ASSERT_TRUE(result.ok()) << result.status();
  Engine engine;
  auto value = engine.Execute(query);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(engine.Serialize(*value), "1");
}

TEST(Robustness, DeepXmlDocumentsAreRejectedNotCrashed) {
  std::string open, close;
  for (int i = 0; i < 5000; ++i) {
    open += "<e>";
    close = "</e>" + close;
  }
  Store store;
  auto result = ParseXmlDocument(&store, open + close);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(Robustness, ModeratelyDeepXmlParses) {
  std::string open, close;
  for (int i = 0; i < 1000; ++i) {
    open += "<e>";
    close = "</e>" + close;
  }
  Store store;
  EXPECT_TRUE(ParseXmlDocument(&store, open + close).ok());
}

TEST(Robustness, TruncatedQueriesErrorCleanly) {
  const char* prefixes[] = {
      "for $x in",
      "let $y :=",
      "if (1)",
      "if (1) then 2 else",
      "insert { <a/> }",
      "snap {",
      "<a b=\"",
      "<a>{",
      "typeswitch (1) case",
      "1 +",
      "$x[",
      "declare function f(",
  };
  for (const char* prefix : prefixes) {
    auto result = ParseProgram(prefix);
    EXPECT_FALSE(result.ok()) << prefix;
  }
}

class MutationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationFuzzTest, MutatedQueriesNeverCrash) {
  // Take valid queries, randomly delete/duplicate/replace characters,
  // and feed the result to the full pipeline. Any Status is fine; the
  // property is the absence of crashes/UB.
  const std::string corpus[] = {
      "for $x in doc('d')//a where $x/@k = 3 order by $x return <r>{$x}</r>",
      "snap ordered { insert {<a/>} into {doc('d')/r}, "
      "snap { delete {doc('d')/r/a} } }",
      "declare function f($n) { if ($n <= 0) then 0 else f($n - 1) }; f(3)",
      "typeswitch (doc('d')/r) case $e as element() return name($e) "
      "default return \"x\"",
      "replace { doc('d')/r/a } with { <b c=\"{1 + 2}\">t</b> }",
      "every $p in doc('d')//a satisfies $p/@k castable as xs:integer",
  };
  std::mt19937_64 rng(GetParam());
  for (const std::string& base : corpus) {
    for (int round = 0; round < 25; ++round) {
      std::string mutated = base;
      int edits = 1 + static_cast<int>(rng() % 4);
      for (int e = 0; e < edits && !mutated.empty(); ++e) {
        size_t pos = rng() % mutated.size();
        switch (rng() % 3) {
          case 0:
            mutated.erase(pos, 1);
            break;
          case 1:
            mutated.insert(pos, 1, mutated[rng() % mutated.size()]);
            break;
          default:
            mutated[pos] = static_cast<char>("{}()<>/@$=\"' abc1"[rng() % 17]);
        }
      }
      Engine engine;
      (void)engine.LoadDocumentFromString(
          "d", "<r><a k=\"3\">x</a><a k=\"4\">y</a></r>");
      auto result = engine.Execute(mutated);
      (void)result;  // Error statuses are expected and fine.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzzTest,
                         ::testing::Range<uint64_t>(0, 8));

class RandomFlworEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomFlworEquivalenceTest, InterpreterMatchesAlgebra) {
  // Generate random (pure) FLWOR queries over a fixed document and
  // check interpreter == algebra on the serialized result.
  std::mt19937_64 rng(GetParam());
  auto pick = [&](std::initializer_list<const char*> options) {
    return *(options.begin() +
             static_cast<long>(rng() % options.size()));
  };
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadDocumentFromString(
                      "d",
                      "<r><p id=\"1\" k=\"x\"/><p id=\"2\" k=\"y\"/>"
                      "<p id=\"3\" k=\"x\"/>"
                      "<t ref=\"1\"/><t ref=\"3\"/><t ref=\"3\"/></r>")
                  .ok());
  for (int round = 0; round < 20; ++round) {
    std::string query = "for $p in doc('d')//p ";
    if (rng() % 2) {
      query += std::string("let $a := for $t in doc('d')//t where ") +
               pick({"$t/@ref = $p/@id", "$p/@id = $t/@ref"}) +
               " return $t ";
    } else {
      query += "let $a := $p/@k ";
    }
    if (rng() % 2) {
      query += std::string("where ") +
               pick({"$p/@k = 'x'", "count($a) > 0", "$p/@id != '2'"}) +
               " ";
    }
    if (rng() % 2) {
      query += std::string("order by ") +
               pick({"$p/@id descending", "$p/@k, $p/@id", "count($a)"}) +
               " ";
    }
    query += std::string("return ") +
             pick({"count($a)", "<o id=\"{$p/@id}\" n=\"{count($a)}\"/>",
                   "string($p/@k)"});
    ExecOptions interpreted;
    auto r1 = engine.Execute(query, interpreted);
    ASSERT_TRUE(r1.ok()) << query << "\n" << r1.status();
    ExecOptions optimized;
    optimized.optimize = true;
    auto r2 = engine.Execute(query, optimized);
    ASSERT_TRUE(r2.ok()) << query << "\n" << r2.status();
    EXPECT_EQ(engine.Serialize(*r1), engine.Serialize(*r2)) << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFlworEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 10));

// ---- Execution resource governor (ExecGuard) ----

/// Engine with a registered document plus its pre-run serialization, so
/// every governor test can assert "no partial Δ was applied": after a
/// tripped run the registered document must be byte-identical to its
/// pre-run state.
class GovernorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = engine_.LoadDocumentFromString(
        "d", "<r><a k=\"1\">x</a><a k=\"2\">y</a><b/></r>");
    ASSERT_TRUE(doc.ok());
    doc_ = *doc;
    before_ = SerializeDoc();
  }

  std::string SerializeDoc() {
    return engine_.Serialize(Sequence{Item::Node(doc_)});
  }

  void ExpectStoreUntouched() { EXPECT_EQ(SerializeDoc(), before_); }

  Engine engine_;
  NodeId doc_ = kInvalidNode;
  std::string before_;
};

TEST_F(GovernorTest, InfiniteRecursionReturnsResourceExhausted) {
  // Section 2's web-service style modules admit unbounded recursion;
  // under default limits that must degrade to a Status, not a crash —
  // identically on the interpreted and the algebra path.
  const char* query = "declare function local:f() { local:f() }; local:f()";
  for (bool optimize : {false, true}) {
    ExecOptions options;
    options.optimize = optimize;
    auto result = engine_.Execute(query, options);
    ASSERT_FALSE(result.ok()) << "optimize=" << optimize;
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status();
    ExpectStoreUntouched();
  }
}

TEST_F(GovernorTest, TightRecursionLimitIsEnforced) {
  ExecOptions options;
  options.limits.max_call_depth = 16;
  auto result = engine_.Execute(
      "declare function local:down($n) "
      "{ if ($n = 0) then 0 else local:down($n - 1) }; local:down(100)",
      options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // The same program within the limit still runs.
  options.limits.max_call_depth = 200;
  EXPECT_TRUE(engine_
                  .Execute(
                      "declare function local:down($n) "
                      "{ if ($n = 0) then 0 else local:down($n - 1) }; "
                      "local:down(100)",
                      options)
                  .ok());
}

TEST_F(GovernorTest, StepBudgetTripsRunawayRange) {
  // The issue's `(1 to 100000000)` shape: a single expression that
  // generates unbounded work item by item.
  ExecOptions options;
  options.limits.max_steps = 100000;
  for (bool optimize : {false, true}) {
    options.optimize = optimize;
    auto result =
        engine_.Execute("count((1 to 100000000)[. mod 7 = 3])", options);
    ASSERT_FALSE(result.ok()) << "optimize=" << optimize;
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status();
    ExpectStoreUntouched();
  }
}

TEST_F(GovernorTest, StepBudgetTripsRunawayNestedFlwor) {
  ExecOptions options;
  options.limits.max_steps = 50000;
  auto result = engine_.Execute(
      "for $i in 1 to 100000 for $j in 1 to 100000 return 1", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  ExpectStoreUntouched();
}

TEST_F(GovernorTest, PendingUpdatesAreDiscardedOnTrip) {
  // The update request is already on the top-level Δ when the step
  // budget trips; the snap semantics require it never to be applied.
  ExecOptions options;
  options.limits.max_steps = 100000;
  auto result = engine_.Execute(
      "(insert { <hit/> } into { doc('d')/r }, (1 to 100000000))", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  ExpectStoreUntouched();
  EXPECT_EQ(engine_.last_updates_applied(), 0);
}

TEST_F(GovernorTest, StoreGrowthBudgetTripsConstructorLoop) {
  ExecOptions options;
  options.limits.max_store_growth = 5000;
  for (bool optimize : {false, true}) {
    options.optimize = optimize;
    auto result = engine_.Execute(
        "for $i in 1 to 1000000 return <a><b c=\"1\"/></a>", options);
    ASSERT_FALSE(result.ok()) << "optimize=" << optimize;
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status();
    ExpectStoreUntouched();
  }
  // The partially constructed garbage is unreachable and reclaimable.
  EXPECT_GT(engine_.CollectGarbage(), 0u);
  ExpectStoreUntouched();
}

TEST_F(GovernorTest, DeadlineTripsLongRunningQuery) {
  ExecOptions options;
  options.limits = ExecLimits::Unlimited();
  options.limits.deadline_ms = 100;
  const auto start = std::chrono::steady_clock::now();
  auto result = engine_.Execute(
      "for $i in 1 to 1000000 return count((1 to 100000)[. = 0])", options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();
  // Generous bound: the check interval is 1024 steps, so the trip must
  // land well inside a couple of seconds even on a slow machine.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  ExpectStoreUntouched();
}

TEST_F(GovernorTest, CancellationFromAnotherThreadReturnsCancelled) {
  for (bool optimize : {false, true}) {
    auto token = std::make_shared<CancellationToken>();
    ExecOptions options;
    options.optimize = optimize;
    options.limits = ExecLimits::Unlimited();
    options.cancellation = token;
    std::thread canceller([token] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      token->Cancel();
    });
    auto result = engine_.Execute(
        "for $i in 1 to 1000000 return count((1 to 100000)[. = 0])",
        options);
    canceller.join();
    ASSERT_FALSE(result.ok()) << "optimize=" << optimize;
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
        << result.status();
    ExpectStoreUntouched();
  }
}

TEST_F(GovernorTest, LimitsBehaveIdenticallyOnBothPaths) {
  // The interpreter and the algebra executor share one ExecGuard per
  // run: the same query under the same limits must produce the same
  // status category on both paths (extends the random equivalence
  // property to resource errors).
  struct Case {
    const char* query;
    ExecLimits limits;
  };
  ExecLimits tight_steps;
  tight_steps.max_steps = 200;
  ExecLimits tight_growth;
  tight_growth.max_store_growth = 3;
  ExecLimits roomy;  // Defaults: nothing trips.
  const Case cases[] = {
      {"for $x in doc('d')//a for $y in doc('d')//a "
       "return string($x/@k)",
       tight_steps},
      {"for $x in doc('d')//a return <o k=\"{$x/@k}\"><c/><c/></o>",
       tight_growth},
      {"for $x in doc('d')//a where $x/@k = '1' return <o>{$x/@k}</o>",
       roomy},
  };
  for (const Case& c : cases) {
    ExecOptions interpreted;
    interpreted.limits = c.limits;
    auto r1 = engine_.Execute(c.query, interpreted);
    ExecOptions optimized = interpreted;
    optimized.optimize = true;
    auto r2 = engine_.Execute(c.query, optimized);
    EXPECT_EQ(r1.status().code(), r2.status().code())
        << c.query << "\ninterpreted: " << r1.status()
        << "\noptimized: " << r2.status();
    if (r1.ok() && r2.ok()) {
      EXPECT_EQ(engine_.Serialize(*r1), engine_.Serialize(*r2)) << c.query;
    } else {
      ExpectStoreUntouched();
    }
  }
}

TEST_F(GovernorTest, UnlimitedModeRunsLargeQueries) {
  ExecOptions options;
  options.limits = ExecLimits::Unlimited();
  auto result = engine_.Execute("count(1 to 3000000)", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(engine_.Serialize(*result), "3000000");
}

TEST(GovernorLimits, ParserDepthConfigurableThroughExecLimits) {
  std::string nested(30, '(');
  nested += "1";
  nested += std::string(30, ')');
  ExecLimits tight;
  tight.max_expr_nesting = 10;
  auto rejected = ParseExpression(nested, tight);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kParseError);
  ExecLimits loose;
  loose.max_expr_nesting = 600;
  std::string deeper(500, '(');
  deeper += "1";
  deeper += std::string(500, ')');
  EXPECT_TRUE(ParseExpression(deeper, loose).ok());
  // The same struct reaches Engine::Prepare / Execute.
  Engine engine;
  EXPECT_FALSE(engine.Prepare(nested, tight).ok());
  ExecOptions options;
  options.limits = tight;
  EXPECT_FALSE(engine.Execute(nested, options).ok());
}

TEST(GovernorLimits, XmlDepthConfigurableThroughExecLimits) {
  std::string open, close;
  for (int i = 0; i < 20; ++i) {
    open += "<e>";
    close = "</e>" + close;
  }
  ExecLimits tight;
  tight.max_xml_nesting = 10;
  Engine engine;
  auto rejected = engine.LoadDocumentFromString("d", open + close, tight);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kParseError);
  ExecLimits loose;
  loose.max_xml_nesting = 50;
  EXPECT_TRUE(engine.LoadDocumentFromString("d", open + close, loose).ok());
  // And directly through XmlParseOptions for parser-level callers.
  Store store;
  XmlParseOptions xml_options;
  xml_options.max_nesting_depth = 10;
  EXPECT_FALSE(ParseXmlDocument(&store, open + close, xml_options).ok());
}

}  // namespace
}  // namespace xqb
