// Robustness suites: adversarial inputs must produce error statuses,
// never crashes — deep nesting, truncated programs, random mutations of
// valid queries — plus a seed-swept random-FLWOR equivalence property
// between the interpreter and the algebra.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "core/engine.h"
#include "frontend/parser.h"
#include "xml/xml_parser.h"

namespace xqb {
namespace {

TEST(Robustness, DeeplyNestedParensAreRejectedNotCrashed) {
  std::string query(2000, '(');
  query += "1";
  query += std::string(2000, ')');
  auto result = ParseExpression(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(Robustness, ModeratelyNestedParensStillParse) {
  std::string query(100, '(');
  query += "1";
  query += std::string(100, ')');
  EXPECT_TRUE(ParseExpression(query).ok());
}

TEST(Robustness, DeeplyNestedConstructorsAreRejected) {
  std::string open, close;
  for (int i = 0; i < 1000; ++i) {
    open += "<a>";
    close = "</a>" + close;
  }
  auto result = ParseExpression(open + close);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(Robustness, DeepUnaryChainsParseIteratively) {
  std::string query(50000, '-');
  query += "1";
  auto result = ParseExpression(query);
  ASSERT_TRUE(result.ok()) << result.status();
  Engine engine;
  auto value = engine.Execute(query);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(engine.Serialize(*value), "1");
}

TEST(Robustness, DeepXmlDocumentsAreRejectedNotCrashed) {
  std::string open, close;
  for (int i = 0; i < 5000; ++i) {
    open += "<e>";
    close = "</e>" + close;
  }
  Store store;
  auto result = ParseXmlDocument(&store, open + close);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(Robustness, ModeratelyDeepXmlParses) {
  std::string open, close;
  for (int i = 0; i < 1000; ++i) {
    open += "<e>";
    close = "</e>" + close;
  }
  Store store;
  EXPECT_TRUE(ParseXmlDocument(&store, open + close).ok());
}

TEST(Robustness, TruncatedQueriesErrorCleanly) {
  const char* prefixes[] = {
      "for $x in",
      "let $y :=",
      "if (1)",
      "if (1) then 2 else",
      "insert { <a/> }",
      "snap {",
      "<a b=\"",
      "<a>{",
      "typeswitch (1) case",
      "1 +",
      "$x[",
      "declare function f(",
  };
  for (const char* prefix : prefixes) {
    auto result = ParseProgram(prefix);
    EXPECT_FALSE(result.ok()) << prefix;
  }
}

class MutationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationFuzzTest, MutatedQueriesNeverCrash) {
  // Take valid queries, randomly delete/duplicate/replace characters,
  // and feed the result to the full pipeline. Any Status is fine; the
  // property is the absence of crashes/UB.
  const std::string corpus[] = {
      "for $x in doc('d')//a where $x/@k = 3 order by $x return <r>{$x}</r>",
      "snap ordered { insert {<a/>} into {doc('d')/r}, "
      "snap { delete {doc('d')/r/a} } }",
      "declare function f($n) { if ($n <= 0) then 0 else f($n - 1) }; f(3)",
      "typeswitch (doc('d')/r) case $e as element() return name($e) "
      "default return \"x\"",
      "replace { doc('d')/r/a } with { <b c=\"{1 + 2}\">t</b> }",
      "every $p in doc('d')//a satisfies $p/@k castable as xs:integer",
  };
  std::mt19937_64 rng(GetParam());
  for (const std::string& base : corpus) {
    for (int round = 0; round < 25; ++round) {
      std::string mutated = base;
      int edits = 1 + static_cast<int>(rng() % 4);
      for (int e = 0; e < edits && !mutated.empty(); ++e) {
        size_t pos = rng() % mutated.size();
        switch (rng() % 3) {
          case 0:
            mutated.erase(pos, 1);
            break;
          case 1:
            mutated.insert(pos, 1, mutated[rng() % mutated.size()]);
            break;
          default:
            mutated[pos] = static_cast<char>("{}()<>/@$=\"' abc1"[rng() % 17]);
        }
      }
      Engine engine;
      (void)engine.LoadDocumentFromString(
          "d", "<r><a k=\"3\">x</a><a k=\"4\">y</a></r>");
      auto result = engine.Execute(mutated);
      (void)result;  // Error statuses are expected and fine.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzzTest,
                         ::testing::Range<uint64_t>(0, 8));

class RandomFlworEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomFlworEquivalenceTest, InterpreterMatchesAlgebra) {
  // Generate random (pure) FLWOR queries over a fixed document and
  // check interpreter == algebra on the serialized result.
  std::mt19937_64 rng(GetParam());
  auto pick = [&](std::initializer_list<const char*> options) {
    return *(options.begin() +
             static_cast<long>(rng() % options.size()));
  };
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadDocumentFromString(
                      "d",
                      "<r><p id=\"1\" k=\"x\"/><p id=\"2\" k=\"y\"/>"
                      "<p id=\"3\" k=\"x\"/>"
                      "<t ref=\"1\"/><t ref=\"3\"/><t ref=\"3\"/></r>")
                  .ok());
  for (int round = 0; round < 20; ++round) {
    std::string query = "for $p in doc('d')//p ";
    if (rng() % 2) {
      query += std::string("let $a := for $t in doc('d')//t where ") +
               pick({"$t/@ref = $p/@id", "$p/@id = $t/@ref"}) +
               " return $t ";
    } else {
      query += "let $a := $p/@k ";
    }
    if (rng() % 2) {
      query += std::string("where ") +
               pick({"$p/@k = 'x'", "count($a) > 0", "$p/@id != '2'"}) +
               " ";
    }
    if (rng() % 2) {
      query += std::string("order by ") +
               pick({"$p/@id descending", "$p/@k, $p/@id", "count($a)"}) +
               " ";
    }
    query += std::string("return ") +
             pick({"count($a)", "<o id=\"{$p/@id}\" n=\"{count($a)}\"/>",
                   "string($p/@k)"});
    ExecOptions interpreted;
    auto r1 = engine.Execute(query, interpreted);
    ASSERT_TRUE(r1.ok()) << query << "\n" << r1.status();
    ExecOptions optimized;
    optimized.optimize = true;
    auto r2 = engine.Execute(query, optimized);
    ASSERT_TRUE(r2.ok()) << query << "\n" << r2.status();
    EXPECT_EQ(engine.Serialize(*r1), engine.Serialize(*r2)) << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFlworEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace xqb
