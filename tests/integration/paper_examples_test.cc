// Every runnable code fragment from the paper's Sections 1–3, as close
// to verbatim as this engine's setup allows, each with the outcome the
// surrounding prose promises.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "xmark/generator.h"

namespace xqb {
namespace {

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkParams params;
    params.factor = 0.2;
    params.seed = 3;
    NodeId auction = GenerateXMarkDocument(&engine_.store(), params);
    // The paper stores the XMark document in a variable $auction.
    engine_.BindVariable("auction", auction);
    engine_.RegisterDocument("auction", auction);
    ASSERT_TRUE(engine_
                    .LoadDocumentFromString("purchasers", "<purchasers/>")
                    .ok());
    auto purchasers = engine_.Execute("doc('purchasers')/purchasers");
    ASSERT_TRUE(purchasers.ok());
    engine_.BindVariable("purchasers", (*purchasers)[0].node());
    ASSERT_TRUE(engine_.LoadDocumentFromString("log", "<log/>").ok());
    auto log = engine_.Execute("doc('log')/log");
    engine_.BindVariable("log", (*log)[0].node());
  }

  std::string Run(const std::string& query) {
    auto result = engine_.Execute(query);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return engine_.Serialize(*result);
  }

  int Count(const std::string& path) {
    return std::stoi(Run("count(" + path + ")"));
  }

  Engine engine_;
};

// Section 2.1: "a typical join query" — one buyer element inserted into
// $purchasers per (person, closed_auction) match.
TEST_F(PaperExamplesTest, Section21SnapshotJoinInsert) {
  int matches = Count(
      "for $p in $auction//person "
      "for $t in $auction//closed_auction "
      "where $t/buyer/@person = $p/@id return $t");
  EXPECT_EQ(Run("for $p in $auction//person "
                "for $t in $auction//closed_auction "
                "where $t/buyer/@person = $p/@id "
                "return insert { <buyer person=\"{$t/buyer/@person}\" "
                "                       itemid=\"{$t/itemref/@item}\" /> } "
                "       into { $purchasers }"),
            "");
  EXPECT_EQ(Count("$purchasers/buyer"), matches);
}

// Section 2.2: get_item without logging.
TEST_F(PaperExamplesTest, Section22GetItemPlain) {
  EXPECT_EQ(Run("declare function get_item($itemid, $userid) { "
                "  let $item := $auction//item[@id = $itemid] "
                "  return $item }; "
                "name(get_item(\"item3\", \"person1\"))"),
            "item");
}

// Section 2.2: the logging version — a side effect AND a return value.
TEST_F(PaperExamplesTest, Section22GetItemWithLogging) {
  EXPECT_EQ(Run("declare function get_item($itemid, $userid) { "
                "  let $item := $auction//item[@id = $itemid] "
                "  return ( "
                "    let $name := $auction//person[@id = $userid]/name "
                "    return insert { <logentry user=\"{$name}\" "
                "                              itemid=\"{$itemid}\"/> } "
                "           into { $log }, "
                "    $item ) }; "
                "name(get_item(\"item3\", \"person1\"))"),
            "item");
  // The insert applied when the top-level snap closed.
  EXPECT_EQ(Count("$log/logentry"), 1);
}

// Section 2.3: snap makes the log insertion visible to the archival
// check in the same query.
TEST_F(PaperExamplesTest, Section23SnapVisibility) {
  EXPECT_EQ(Run("let $maxlog := 1 return ("
                "snap insert { <logentry user=\"u\" itemid=\"i\"/> } "
                "     into { $log }, "
                "if (count($log/logentry) >= $maxlog) "
                "then snap delete { $log/logentry } "
                "else \"kept\" )"),
            "");
  EXPECT_EQ(Count("$log/logentry"), 0);  // Rotated away.
}

// Section 2.5: the counter.
TEST_F(PaperExamplesTest, Section25Counter) {
  EXPECT_EQ(Run("declare variable $d := element counter { 0 }; "
                "declare function nextid() { "
                "  snap { replace { $d/text() } with { $d + 1 }, "
                "         string($d + 1) } }; "
                "(nextid(), nextid(), nextid())"),
            "1 2 3");
}

// Section 2.5: nextid() composed inside the logging snap.
TEST_F(PaperExamplesTest, Section25CounterInsideLogging) {
  EXPECT_EQ(Run("declare variable $d := element counter { 0 }; "
                "declare function nextid() { "
                "  snap { replace { $d/text() } with { $d + 1 }, "
                "         string($d + 1) } }; "
                "for $item in ($auction//item)[position() <= 3] return "
                "snap insert { <logentry id=\"{nextid()}\" "
                "                        itemid=\"{$item/@id}\"/> } "
                "     into { $log }"),
            "");
  EXPECT_EQ(Run("$log/logentry/string(@id)"), "1 2 3");
}

// Section 3.1: "if the deleted (actually, detached) node is still
// accessible from a variable, then it can still be queried, or inserted
// somewhere".
TEST_F(PaperExamplesTest, Section31DetachSemantics) {
  EXPECT_EQ(Run("let $victim := ($auction//closed_auction)[1] return ("
                "  snap delete { $victim }, "
                "  (: still queryable: :) count($victim/price), "
                "  (: and insertable: :) "
                "  snap insert { $victim } into { $purchasers } )"),
            "1");
  EXPECT_EQ(Count("$purchasers/closed_auction"), 1);
}

// Section 3.3: normalization's copy — the same tree inserted twice
// becomes two independent copies.
TEST_F(PaperExamplesTest, Section33CopySemantics) {
  EXPECT_EQ(Run("let $n := <note/> return ("
                "insert { $n } into { $purchasers }, "
                "insert { $n } into { $log } )"),
            "");
  EXPECT_EQ(Count("$purchasers/note"), 1);
  EXPECT_EQ(Count("$log/note"), 1);
}

// Section 3.4: the sequence rule's store threading — Expr2 sees the
// store Expr1's nested snap produced.
TEST_F(PaperExamplesTest, Section34StoreThreading) {
  EXPECT_EQ(Run("( snap insert { <first/> } into { $log }, "
                "  count($log/first) )"),
            "1");
}

// Section 3.4: the nesting example, all three modes agree here because
// only the inner snap's scope overlaps.
TEST_F(PaperExamplesTest, Section34NestingExampleAllModes) {
  for (const char* mode : {"ordered", "nondeterministic"}) {
    Engine engine;
    ASSERT_TRUE(engine.LoadDocumentFromString("d", "<x/>").ok());
    auto result = engine.Execute(
        std::string("let $x := doc('d')/x return snap ") + mode +
        " { insert {<a/>} into {$x}, "
        "   snap { insert {<b/>} into {$x} }, "
        "   insert {<c/>} into {$x} }");
    ASSERT_TRUE(result.ok()) << result.status();
    auto after = engine.Execute("doc('d')");
    // Ordered gives exactly b,a,c; nondeterministic gives b first (the
    // nested snap applied during evaluation), then a and c in some
    // order.
    std::string rendered = engine.Serialize(*after);
    if (std::string(mode) == "ordered") {
      EXPECT_EQ(rendered, "<x><b/><a/><c/></x>");
    } else {
      EXPECT_TRUE(rendered == "<x><b/><a/><c/></x>" ||
                  rendered == "<x><b/><c/><a/></x>")
          << rendered;
    }
  }
}

// Section 4.3: the optimized query returns per-person counts whose sum
// equals the total number of closed auctions, and logs one buyer per
// match.
TEST_F(PaperExamplesTest, Section43Q8VariantEndToEnd) {
  ExecOptions options;
  options.optimize = true;
  auto result = engine_.Execute(
      "for $p in $auction//person "
      "let $a := "
      "  for $t in $auction//closed_auction "
      "  where $t/buyer/@person = $p/@id "
      "  return (insert { <buyer person=\"{$t/buyer/@person}\" "
      "                          itemid=\"{$t/itemref/@item}\" /> } "
      "          into { $purchasers }, $t) "
      "return <item person=\"{ $p/name }\">{ count($a) }</item>",
      options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(engine_.last_used_algebra());
  EXPECT_EQ(static_cast<int>(result->size()),
            Count("$auction//person"));
  EXPECT_EQ(Count("$purchasers/buyer"),
            Count("$auction//closed_auction"));
}

}  // namespace
}  // namespace xqb
