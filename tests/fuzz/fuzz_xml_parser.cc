// libFuzzer entry point for the two text frontends: the XML document
// parser and the XQuery! lexer/parser. Build with
//
//   cmake -B build-fuzz -S . -DXQB_FUZZ=ON \
//         -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build-fuzz --target fuzz_xml_parser
//   ./build-fuzz/tests/fuzz/fuzz_xml_parser tests/fuzz/corpus
//
// The harness splits each input on the first 0xFF byte: the prefix goes
// to the XML parser, the suffix to the query parser (absent a split
// byte, the whole input feeds both). Nesting-depth caps route through
// the same ExecLimits the execution governor uses, kept deliberately
// tight so the fuzzer probes the rejection paths instead of exhausting
// its own stack. The property under test: any byte sequence produces a
// Status, never a crash, hang, or sanitizer report.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "base/limits.h"
#include "frontend/parser.h"
#include "xdm/store.h"
#include "xml/xml_parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  std::string_view xml_part = input;
  std::string_view query_part = input;
  const size_t split = input.find('\xff');
  if (split != std::string_view::npos) {
    xml_part = input.substr(0, split);
    query_part = input.substr(split + 1);
  }

  {
    xqb::Store store;
    xqb::XmlParseOptions options;
    options.max_nesting_depth = 64;
    (void)xqb::ParseXmlDocument(&store, xml_part, options);
    (void)xqb::ParseXmlFragment(&store, xml_part, options);
  }
  {
    xqb::ExecLimits limits;
    limits.max_expr_nesting = 64;
    limits.max_xml_nesting = 64;
    (void)xqb::ParseProgram(query_part, limits);
  }
  return 0;
}
