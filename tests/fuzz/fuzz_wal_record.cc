// libFuzzer entry point for the durable-store decode surface
// (docs/ROBUSTNESS.md "Durability"). Build with
//
//   cmake -B build-fuzz -S . -DXQB_FUZZ=ON \
//         -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build-fuzz --target fuzz_wal_record
//   ./build-fuzz/tests/fuzz/fuzz_wal_record tests/fuzz/corpus
//
// The input is treated three ways at once: as the head of a WAL byte
// stream (frame decode: length/CRC validation, torn-tail detection), as
// a bare record payload (record decode: kind tags, QNames, tree
// snapshots, delta-hash verification), and — when it decodes — as a
// record replayed into a fresh Store. The corpus seeds
// (seed_wal_frame_*) are valid encoded frames, so the fuzzer starts
// from the interesting side of the CRC and mutates inward. The property
// under test: arbitrary bytes produce a Status (malformation is
// kDataLoss), never a crash, hang, OOM, or sanitizer report.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "store/record.h"
#include "xdm/store.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);

  // Frame layer: consume frames until the torn tail, as ReadWal does.
  std::string_view rest = input;
  while (!rest.empty()) {
    auto frame = xqb::DecodeFrame(rest);
    if (!frame.ok()) break;
    auto record = xqb::DecodeRecordPayload(frame->payload);
    if (record.ok()) {
      xqb::Store store;
      switch (record->kind) {
        case xqb::WalRecordKind::kDocument:
          (void)xqb::RestoreTree(&store, record->tree);
          break;
        case xqb::WalRecordKind::kDelta:
          for (const auto& request : record->requests) {
            if (!xqb::ReplayRequest(&store, request).ok()) break;
          }
          break;
        case xqb::WalRecordKind::kGcFree:
          (void)store.RestoreFreeNodes(record->freed);
          break;
      }
    }
    rest.remove_prefix(frame->frame_size);
  }

  // Record layer, unframed: the raw payload bytes directly, probing the
  // decoder without requiring the fuzzer to keep a CRC consistent.
  (void)xqb::DecodeRecordPayload(input);

  // Primitive layer: the tree codec via a bare reader.
  xqb::ByteReader reader(input);
  (void)xqb::DecodeTree(&reader);
  return 0;
}
