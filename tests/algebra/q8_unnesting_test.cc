// E6: the Section 4.3 plan — the XMark Q8 variant with an embedded
// insert compiles to Snap{MapFromItem(GroupBy(LeftOuterJoin(...)))}
// (our HashGroupJoin) when the insert is NOT wrapped in its own snap,
// and stays a nested-loop plan when it is.

#include <gtest/gtest.h>

#include "algebra/compile.h"
#include "algebra/rewrite.h"
#include "base/string_util.h"
#include "core/normalize.h"
#include "core/purity.h"
#include "frontend/parser.h"

namespace xqb {
namespace {

constexpr const char* kQ8 = R"XQ(
for $p in $auction//person
let $a :=
  for $t in $auction//closed_auction
  where $t/buyer/@person = $p/@id
  return (insert { <buyer person="{$t/buyer/@person}"/> }
          into { $purchasers }, $t)
return <item person="{ $p/name }">{ count($a) }</item>
)XQ";

constexpr const char* kQ8WithSnapInsert = R"XQ(
for $p in $auction//person
let $a :=
  for $t in $auction//closed_auction
  where $t/buyer/@person = $p/@id
  return (snap insert { <buyer person="{$t/buyer/@person}"/> }
          into { $purchasers }, $t)
return <item person="{ $p/name }">{ count($a) }</item>
)XQ";

class Q8UnnestingTest : public ::testing::Test {
 protected:
  /// Prepares a program and optimizes its canonical plan; returns the
  /// rewrite stats, keeping program and plan alive for inspection.
  RewriteStats OptimizeQuery(const char* query) {
    auto program = ParseProgram(query);
    EXPECT_TRUE(program.ok()) << program.status();
    program_ = std::move(*program);
    NormalizeProgram(&program_);
    purity_.AnalyzeProgram(&program_);
    plan_ = CompileQueryToPlan(*program_.body);
    EXPECT_NE(plan_, nullptr);
    return OptimizePlan(&plan_, purity_);
  }

  Program program_;
  PurityAnalysis purity_;
  PlanPtr plan_;
};

TEST_F(Q8UnnestingTest, Q8VariantBecomesGroupJoin) {
  RewriteStats stats = OptimizeQuery(kQ8);
  EXPECT_EQ(stats.group_joins, 1);
  std::string plan = plan_->DebugString();
  EXPECT_TRUE(Contains(plan, "HashGroupJoin[a]")) << plan;
  EXPECT_FALSE(Contains(plan, "Let[")) << plan;
  // The paper's plan keeps the insert inside the GroupBy's per-match
  // expression.
  EXPECT_TRUE(Contains(plan, "ret { (seq (insert")) << plan;
}

TEST_F(Q8UnnestingTest, SnapInsertSuppressesTheRewrite) {
  // "if we had used a snap insert at line 5 of the source code, the
  // group-by optimization would be more difficult to detect" — our
  // optimizer (like the paper's) refuses it.
  RewriteStats stats = OptimizeQuery(kQ8WithSnapInsert);
  EXPECT_EQ(stats.group_joins, 0);
  EXPECT_EQ(stats.hash_joins, 0);
  std::string plan = plan_->DebugString();
  EXPECT_FALSE(Contains(plan, "HashGroupJoin")) << plan;
  EXPECT_TRUE(Contains(plan, "Let[a]")) << plan;
}

TEST_F(Q8UnnestingTest, PureQ8AlsoUnnests) {
  // Without the insert (plain XMark Q8) the rewrite also fires.
  RewriteStats stats = OptimizeQuery(
      "for $p in $auction//person "
      "let $a := for $t in $auction//closed_auction "
      "          where $t/buyer/@person = $p/@id return $t "
      "return count($a)");
  EXPECT_EQ(stats.group_joins, 1);
}

TEST_F(Q8UnnestingTest, FlippedPredicateSidesStillMatch) {
  RewriteStats stats = OptimizeQuery(
      "for $p in $persons let $a := "
      "for $t in $auctions where $p/@id = $t/buyer/@person return $t "
      "return count($a)");
  EXPECT_EQ(stats.group_joins, 1);
}

TEST_F(Q8UnnestingTest, DependentInnerSourceIsNotRewritten) {
  // E2 depends on $p: no independence, no join.
  RewriteStats stats = OptimizeQuery(
      "for $p in $persons let $a := "
      "for $t in $p/auctions where $t/@b = $p/@id return $t "
      "return count($a)");
  EXPECT_EQ(stats.group_joins, 0);
}

TEST_F(Q8UnnestingTest, NonEqualityPredicateIsNotRewritten) {
  RewriteStats stats = OptimizeQuery(
      "for $p in $persons let $a := "
      "for $t in $auctions where $t/@b < $p/@id return $t "
      "return count($a)");
  EXPECT_EQ(stats.group_joins, 0);
}

TEST_F(Q8UnnestingTest, UpdateInInnerSourceIsNotRewritten) {
  // Cardinality guard: the build side would run once instead of once
  // per person, changing how many update requests are emitted.
  RewriteStats stats = OptimizeQuery(
      "for $p in $persons let $a := "
      "for $t in (insert { <x/> } into { $log }, $auctions) "
      "where $t/@b = $p/@id return $t "
      "return count($a)");
  EXPECT_EQ(stats.group_joins, 0);
}

TEST_F(Q8UnnestingTest, SnapInPredicateIsNotRewritten) {
  RewriteStats stats = OptimizeQuery(
      "for $p in $persons let $a := "
      "for $t in $auctions "
      "where $t/@b = (snap { delete { $junk } }, $p/@id) return $t "
      "return count($a)");
  EXPECT_EQ(stats.group_joins, 0);
}

TEST_F(Q8UnnestingTest, RuleTogglesDisableRewrites) {
  // Ablation switches: with group_join off, Q8 keeps its nested plan.
  auto program = ParseProgram(kQ8);
  ASSERT_TRUE(program.ok());
  program_ = std::move(*program);
  NormalizeProgram(&program_);
  purity_.AnalyzeProgram(&program_);
  plan_ = CompileQueryToPlan(*program_.body);
  RewriteOptions options;
  options.group_join = false;
  RewriteStats stats = OptimizePlan(&plan_, purity_, options);
  EXPECT_EQ(stats.group_joins, 0);
  EXPECT_TRUE(Contains(plan_->DebugString(), "Let[a]"));
}

TEST_F(Q8UnnestingTest, SimpleJoinBecomesHashJoin) {
  RewriteStats stats = OptimizeQuery(
      "for $p in $persons, $t in $auctions "
      "where $t/buyer/@person = $p/@id "
      "return ($p, $t)");
  EXPECT_EQ(stats.hash_joins, 1);
  EXPECT_TRUE(Contains(plan_->DebugString(), "HashJoin"));
}

TEST_F(Q8UnnestingTest, HashJoinGuardsOnSnap) {
  RewriteStats stats = OptimizeQuery(
      "for $p in $persons, $t in (snap { delete { $x } }, $auctions) "
      "where $t/@b = $p/@id "
      "return $t");
  EXPECT_EQ(stats.hash_joins, 0);
}

TEST_F(Q8UnnestingTest, UpdatingFunctionCallSuppressesRewrite) {
  // The purity table must flow through declared functions.
  RewriteStats stats = OptimizeQuery(
      "declare function touch() { snap { delete { $junk } } }; "
      "for $p in $persons let $a := "
      "for $t in $auctions where $t/@b = (touch(), $p/@id) return $t "
      "return count($a)");
  EXPECT_EQ(stats.group_joins, 0);
}

}  // namespace
}  // namespace xqb
