// RW3 selection pushdown: plan-shape assertions, purity guards, and
// result equivalence.

#include <gtest/gtest.h>

#include "algebra/compile.h"
#include "algebra/rewrite.h"
#include "base/string_util.h"
#include "core/engine.h"
#include "core/normalize.h"
#include "core/purity.h"
#include "frontend/parser.h"

namespace xqb {
namespace {

class PushdownTest : public ::testing::Test {
 protected:
  RewriteStats OptimizeQuery(const char* query) {
    auto program = ParseProgram(query);
    EXPECT_TRUE(program.ok()) << program.status();
    program_ = std::move(*program);
    NormalizeProgram(&program_);
    purity_.AnalyzeProgram(&program_);
    plan_ = CompileQueryToPlan(*program_.body);
    EXPECT_NE(plan_, nullptr);
    return OptimizePlan(&plan_, purity_);
  }

  Program program_;
  PurityAnalysis purity_;
  PlanPtr plan_;
};

TEST_F(PushdownTest, IndependentPredicateSinksBelowInnerLoop) {
  // The filter on $p does not mention $t: it should run before the $t
  // expansion.
  RewriteStats stats = OptimizeQuery(
      "for $p in $persons, $t in $p/auctions "
      "where $p/@vip = 'yes' "
      "return $t");
  EXPECT_EQ(stats.selects_pushed, 1);
  // Shape: MapToItem <- MapConcat[t] <- Select <- MapConcat[p].
  const Plan* p = plan_.get();
  ASSERT_EQ(p->kind, PlanKind::kMapToItem);
  p = p->input.get();
  EXPECT_EQ(p->kind, PlanKind::kMapConcat);
  EXPECT_EQ(p->field, "t");
  p = p->input.get();
  EXPECT_EQ(p->kind, PlanKind::kSelect);
  p = p->input.get();
  EXPECT_EQ(p->kind, PlanKind::kMapConcat);
  EXPECT_EQ(p->field, "p");
}

TEST_F(PushdownTest, DependentPredicateStaysPut) {
  RewriteStats stats = OptimizeQuery(
      "for $p in $persons, $t in $p/auctions "
      "where $t/@open = 'yes' "
      "return $t");
  EXPECT_EQ(stats.selects_pushed, 0);
}

TEST_F(PushdownTest, PositionVariableBlocksPushdown) {
  RewriteStats stats = OptimizeQuery(
      "for $p in $persons, $t at $i in $p/auctions "
      "where $i = 1 "
      "return $t");
  EXPECT_EQ(stats.selects_pushed, 0);
}

TEST_F(PushdownTest, EffectfulPredicateStaysPut) {
  // The predicate emits updates: its evaluation count must not change.
  RewriteStats stats = OptimizeQuery(
      "for $p in $persons, $t in $p/auctions "
      "where (insert { <w/> } into { $log }, $p/@vip = 'yes') "
      "return $t");
  EXPECT_EQ(stats.selects_pushed, 0);
}

TEST_F(PushdownTest, EffectfulLoopBodyBlocksPushdown) {
  // The inner map's expression emits updates: filtering rows out early
  // would change how many requests it emits.
  RewriteStats stats = OptimizeQuery(
      "for $p in $persons, "
      "    $t in (insert { <w/> } into { $log }, $p/auctions) "
      "where $p/@vip = 'yes' "
      "return $t");
  EXPECT_EQ(stats.selects_pushed, 0);
}

TEST_F(PushdownTest, PushdownPreservesResults) {
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadDocumentFromString(
                      "d",
                      "<r><p vip=\"yes\"><a/><a/></p>"
                      "<p vip=\"no\"><a/></p></r>")
                  .ok());
  const char* query =
      "for $p in doc('d')//p, $t in $p/a "
      "where $p/@vip = 'yes' "
      "return <hit/>";
  ExecOptions interpreted;
  ExecOptions optimized;
  optimized.optimize = true;
  auto r1 = engine.Execute(query, interpreted);
  auto r2 = engine.Execute(query, optimized);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(engine.Serialize(*r1), engine.Serialize(*r2));
  EXPECT_EQ(engine.Serialize(*r2), "<hit/><hit/>");
  EXPECT_TRUE(Contains(engine.last_plan(), "Select"));
}

}  // namespace
}  // namespace xqb
