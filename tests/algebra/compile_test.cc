// Unit tests for the algebra compiler: free-variable analysis and the
// canonical FLWOR -> tuple-plan translation.

#include <gtest/gtest.h>

#include "algebra/compile.h"
#include "base/string_util.h"
#include "frontend/parser.h"

namespace xqb {
namespace {

std::set<std::string> FreeOf(const char* query) {
  auto expr = ParseExpression(query);
  EXPECT_TRUE(expr.ok()) << expr.status();
  return FreeVariables(**expr);
}

TEST(FreeVariables, SimpleReferences) {
  EXPECT_EQ(FreeOf("$a + $b"), (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(FreeOf("1 + 2"), (std::set<std::string>{}));
}

TEST(FreeVariables, FlworBindingsAreNotFree) {
  EXPECT_EQ(FreeOf("for $x in $s return $x + $y"),
            (std::set<std::string>{"s", "y"}));
  EXPECT_EQ(FreeOf("let $x := $x0 return $x"),
            (std::set<std::string>{"x0"}));
  EXPECT_EQ(FreeOf("for $x at $i in $s return $i"),
            (std::set<std::string>{"s"}));
}

TEST(FreeVariables, BindingScopeIsLeftToRight) {
  // The first clause's expression cannot see later bindings.
  EXPECT_EQ(FreeOf("for $x in $y, $y in $x return 0"),
            (std::set<std::string>{"y"}));
}

TEST(FreeVariables, ShadowingDoesNotLeak) {
  EXPECT_EQ(FreeOf("(for $x in $s return $x), $x"),
            (std::set<std::string>{"s", "x"}));
}

TEST(FreeVariables, QuantifiersBind) {
  EXPECT_EQ(FreeOf("some $x in $s satisfies $x = $k"),
            (std::set<std::string>{"s", "k"}));
}

TEST(FreeVariables, UpdateOperandsCount) {
  EXPECT_EQ(FreeOf("insert { $n } into { $t }"),
            (std::set<std::string>{"n", "t"}));
  EXPECT_EQ(FreeOf("snap { delete { $x } }"),
            (std::set<std::string>{"x"}));
}

TEST(FreeVariables, OrderByKeysCount) {
  EXPECT_EQ(FreeOf("for $x in $s order by $x/$k return $x"),
            (std::set<std::string>{"s", "k"}));
}

class CompileTest : public ::testing::Test {
 protected:
  /// Parses and compiles; the Program must stay alive while the plan is
  /// inspected, so keep it as a member.
  PlanPtr Compile(const char* query) {
    auto program = ParseProgram(query);
    EXPECT_TRUE(program.ok()) << program.status();
    program_ = std::move(*program);
    return CompileQueryToPlan(*program_.body);
  }

  Program program_;
};

TEST_F(CompileTest, NonFlworIsUnsupported) {
  EXPECT_EQ(Compile("1 + 1"), nullptr);
  EXPECT_EQ(Compile("<a/>"), nullptr);
}

TEST_F(CompileTest, SimpleForBecomesMapConcat) {
  PlanPtr plan = Compile("for $x in $s return $x");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, PlanKind::kMapToItem);
  ASSERT_NE(plan->input, nullptr);
  EXPECT_EQ(plan->input->kind, PlanKind::kMapConcat);
  EXPECT_EQ(plan->input->field, "x");
  EXPECT_EQ(plan->input->input->kind, PlanKind::kSingleton);
  EXPECT_EQ(plan->fields, (std::vector<std::string>{"x"}));
}

TEST_F(CompileTest, AllClauseKindsTranslate) {
  PlanPtr plan = Compile(
      "for $x at $i in $s let $y := $x where $y > 1 "
      "order by $y return $y");
  ASSERT_NE(plan, nullptr);
  // MapToItem <- OrderBy <- Select <- Let <- MapConcat <- Singleton.
  const Plan* p = plan.get();
  EXPECT_EQ(p->kind, PlanKind::kMapToItem);
  p = p->input.get();
  EXPECT_EQ(p->kind, PlanKind::kOrderBy);
  p = p->input.get();
  EXPECT_EQ(p->kind, PlanKind::kSelect);
  p = p->input.get();
  EXPECT_EQ(p->kind, PlanKind::kLet);
  EXPECT_EQ(p->field, "y");
  p = p->input.get();
  EXPECT_EQ(p->kind, PlanKind::kMapConcat);
  EXPECT_EQ(p->field, "x");
  EXPECT_EQ(p->pos_field, "i");
  EXPECT_EQ(p->input->kind, PlanKind::kSingleton);
  EXPECT_EQ(plan->fields, (std::vector<std::string>{"x", "i", "y"}));
}

TEST_F(CompileTest, PlanDebugStringShowsShape) {
  PlanPtr plan = Compile("for $x in $s where $x return $x");
  ASSERT_NE(plan, nullptr);
  std::string rendered = plan->DebugString();
  EXPECT_TRUE(Contains(rendered, "MapToItem"));
  EXPECT_TRUE(Contains(rendered, "Select"));
  EXPECT_TRUE(Contains(rendered, "MapConcat[x]"));
  EXPECT_TRUE(Contains(rendered, "Singleton"));
}

}  // namespace
}  // namespace xqb
