// E12 (execution half): optimized and interpreted execution agree — a
// parameterized equivalence sweep over join-shaped queries, plus direct
// checks of HashGroupJoin/HashJoin behaviour including update effects.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "xmark/generator.h"

namespace xqb {
namespace {

/// Runs `query` twice on identical fresh engines — interpreted and
/// optimized — and returns the two serialized results plus plan use.
struct TwoRuns {
  std::string interpreted;
  std::string optimized;
  bool used_algebra = false;
  std::string final_doc_interpreted;
  std::string final_doc_optimized;
};

TwoRuns RunBothWays(const std::string& query) {
  TwoRuns out;
  for (bool optimize : {false, true}) {
    Engine engine;
    XMarkParams params;
    params.factor = 0.1;
    NodeId auction = GenerateXMarkDocument(&engine.store(), params);
    engine.BindVariable("auction", auction);
    auto log = engine.LoadDocumentFromString("log", "<log/>");
    EXPECT_TRUE(log.ok());
    auto root = engine.Execute("doc('log')/log");
    EXPECT_TRUE(root.ok());
    engine.BindVariable("purchasers", (*root)[0].node());
    ExecOptions options;
    options.optimize = optimize;
    auto result = engine.Execute(query, options);
    std::string rendered = result.ok()
                               ? engine.Serialize(*result)
                               : "ERROR: " + result.status().ToString();
    bool used_algebra = engine.last_used_algebra();
    auto doc_after = engine.Execute("doc('log')");
    std::string doc_rendered =
        doc_after.ok() ? engine.Serialize(*doc_after) : "ERROR";
    if (optimize) {
      out.optimized = rendered;
      out.used_algebra = used_algebra;
      out.final_doc_optimized = doc_rendered;
    } else {
      out.interpreted = rendered;
      out.final_doc_interpreted = doc_rendered;
    }
  }
  return out;
}

class PlanEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PlanEquivalenceTest, OptimizedMatchesInterpreted) {
  TwoRuns runs = RunBothWays(GetParam());
  EXPECT_EQ(runs.interpreted, runs.optimized) << GetParam();
  EXPECT_EQ(runs.final_doc_interpreted, runs.final_doc_optimized)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Queries, PlanEquivalenceTest,
    ::testing::Values(
        // Plain iteration.
        "for $p in $auction//person return string($p/@id)",
        // let + where.
        "for $p in $auction//person "
        "let $n := $p/name where $p/@id = 'person3' return string($n)",
        // The paper's Q8 variant (group join fires; results identical).
        "for $p in $auction//person "
        "let $a := for $t in $auction//closed_auction "
        "          where $t/buyer/@person = $p/@id return $t "
        "return <r id=\"{$p/@id}\" n=\"{count($a)}\"/>",
        // Q8 with the embedded insert: same values AND same final log.
        "for $p in $auction//person "
        "let $a := for $t in $auction//closed_auction "
        "          where $t/buyer/@person = $p/@id "
        "          return (insert { <b p=\"{$t/buyer/@person}\"/> } "
        "                  into { $purchasers }, $t) "
        "return <r id=\"{$p/@id}\" n=\"{count($a)}\"/>",
        // Flat binary join.
        "for $p in $auction//person, $t in $auction//closed_auction "
        "where $t/buyer/@person = $p/@id "
        "return <hit p=\"{$p/@id}\"/>",
        // Join keyed on an expression (concat).
        "for $p in $auction//person, $t in $auction//closed_auction "
        "where concat(\"\", $t/buyer/@person) = $p/@id "
        "return string($t/price)",
        // No join shape at all: Select stays.
        "for $p in $auction//person where count($p/*) > 2 "
        "return string($p/@id)"));

TEST(PlanExec, GroupJoinEmitsSameUpdatesAsNestedLoop) {
  // The per-match insert count must be exactly |matches| either way.
  const char* query =
      "for $p in $auction//person "
      "let $a := for $t in $auction//closed_auction "
      "          where $t/buyer/@person = $p/@id "
      "          return (insert { <b/> } into { $purchasers }, $t) "
      "return count($a)";
  TwoRuns runs = RunBothWays(query);
  EXPECT_TRUE(runs.used_algebra);
  EXPECT_EQ(runs.final_doc_interpreted, runs.final_doc_optimized);
}

TEST(PlanExec, OuterJoinKeepsUnmatchedPersons) {
  // Every person appears in the result, matched or not (outer join).
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadDocumentFromString(
                      "d",
                      "<r><p id=\"1\"/><p id=\"2\"/>"
                      "<t ref=\"1\"/><t ref=\"1\"/></r>")
                  .ok());
  ExecOptions options;
  options.optimize = true;
  auto result = engine.Execute(
      "for $p in doc('d')//p "
      "let $a := for $t in doc('d')//t where $t/@ref = $p/@id return $t "
      "return count($a)",
      options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(engine.last_used_algebra());
  EXPECT_EQ(engine.Serialize(*result), "2 0");
}

TEST(PlanExec, UntypedKeysMatchNumbers) {
  // General '=' coercion: untyped attribute vs integer key.
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadDocumentFromString(
                      "d", "<r><p k=\"7\"/><p k=\"8\"/><t k=\"7\"/></r>")
                  .ok());
  ExecOptions options;
  options.optimize = true;
  auto result = engine.Execute(
      "for $p in doc('d')//p "
      "let $a := for $t in doc('d')//t where $t/@k = $p/@k return $t "
      "return count($a)",
      options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(engine.Serialize(*result), "1 0");
}

TEST(PlanExec, OrderByExecutesInAlgebra) {
  Engine engine;
  ASSERT_TRUE(
      engine.LoadDocumentFromString("d", "<r><x>2</x><x>1</x><x>3</x></r>")
          .ok());
  ExecOptions options;
  options.optimize = true;
  auto result = engine.Execute(
      "for $x in doc('d')//x order by $x descending return string($x)",
      options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(engine.last_used_algebra());
  EXPECT_EQ(engine.Serialize(*result), "3 2 1");
}

TEST(PlanExec, MultiKeyProbeMatchesExistentially) {
  // A probe key with several atoms joins if ANY matches (general '=').
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadDocumentFromString(
                      "d",
                      "<r><p><k>1</k><k>5</k></p>"
                      "<t id=\"5\"/><t id=\"9\"/></r>")
                  .ok());
  ExecOptions options;
  options.optimize = true;
  auto result = engine.Execute(
      "for $p in doc('d')//p "
      "let $a := for $t in doc('d')//t where $t/@id = $p/k return $t "
      "return count($a)",
      options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(engine.last_used_algebra());
  EXPECT_EQ(engine.Serialize(*result), "1");
}

}  // namespace
}  // namespace xqb
