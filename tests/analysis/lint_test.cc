// Golden-diagnostic corpus for Engine::LintQuery plus unit tests for
// rule suppression and the error-collection paths. Each corpus query
// tests/analysis/corpus/<name>.xq has a checked-in
// <name>.expected.json holding the exact RenderDiagnosticsJson output;
// the comparison is byte-for-byte, pinning codes, locations, messages,
// ordering, and the JSON shape CI consumes.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "core/engine.h"

namespace xqb {
namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(LintGolden, CorpusMatchesExpectedJson) {
  const std::filesystem::path dir = XQB_ANALYSIS_CORPUS_DIR;
  std::vector<std::filesystem::path> queries;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".xq") queries.push_back(entry.path());
  }
  std::sort(queries.begin(), queries.end());
  ASSERT_FALSE(queries.empty()) << "no corpus queries in " << dir;

  Engine engine;
  for (const std::filesystem::path& query_path : queries) {
    std::filesystem::path expected_path = query_path;
    expected_path.replace_extension(".expected.json");
    const std::string query = ReadFile(query_path);
    const std::string expected = ReadFile(expected_path);
    const std::string actual =
        RenderDiagnosticsJson(engine.LintQuery(query));
    EXPECT_EQ(actual, expected) << "for " << query_path.filename();
  }
}

TEST(Lint, CleanQueryHasNoDiagnostics) {
  Engine engine;
  auto diags = engine.LintQuery(
      "snap { insert { <a/> } into { doc('d')/r } }");
  EXPECT_TRUE(diags.empty());
}

TEST(Lint, DisabledCodesAreSuppressed) {
  Engine engine;
  const char* query = "insert { <a/> } into { doc('d')/r }";
  auto diags = engine.LintQuery(query);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "XQL001");
  EXPECT_EQ(diags[0].severity, Severity::kWarning);

  LintOptions options;
  options.disabled.insert("XQL001");
  EXPECT_TRUE(engine.LintQuery(query, ExecLimits{}, options).empty());
}

TEST(Lint, ParseErrorBecomesLocatedDiagnostic) {
  Engine engine;
  auto diags = engine.LintQuery("1 +");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "XPST0003");
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_GT(diags[0].line, 0);
  EXPECT_GT(diags[0].col, 0);
}

TEST(Lint, CollectsAllStaticErrorsNotJustTheFirst) {
  // The legacy Prepare path stops at the first static error; the lint
  // path reports every unbound variable and unknown function at once.
  Engine engine;
  auto diags = engine.LintQuery("($nope, fn:no-such(1), $also)");
  std::vector<std::string> codes;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) codes.push_back(d.code);
  }
  ASSERT_EQ(codes.size(), 3u);
  EXPECT_EQ(codes[0], "XPST0008");
  EXPECT_EQ(codes[1], "XPST0017");
  EXPECT_EQ(codes[2], "XPST0008");
}

TEST(Lint, EngineVariablesAreNotUnbound) {
  Engine engine;
  engine.BindVariable("known", Sequence{Item::Integer(1)});
  auto diags = engine.LintQuery("$known + 1");
  EXPECT_TRUE(diags.empty());
}

TEST(Lint, UpdatingDeclarationMismatchIsReported) {
  // XUST0001 only fires once some function opts into the updating
  // annotation; then every mismatched declaration is flagged.
  Engine engine;
  auto diags = engine.LintQuery(
      "declare updating function local:ok() {"
      "  insert { <a/> } into { doc('d')/r } };"
      "declare function local:bad() { delete { doc('d')/r/a } };"
      "snap { (local:ok(), local:bad()) }");
  std::vector<std::string> codes;
  for (const Diagnostic& d : diags) codes.push_back(d.code);
  ASSERT_EQ(codes.size(), 1u) << RenderDiagnosticsJson(diags);
  EXPECT_EQ(codes[0], "XUST0001");
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("local:bad"), std::string::npos);
}

TEST(Lint, DiagnosticsAreSortedByLocation) {
  Engine engine;
  auto diags = engine.LintQuery(
      "declare variable $unused := 1;\n"
      "insert { <a/> } into { doc('d')/r }");
  ASSERT_GE(diags.size(), 2u);
  EXPECT_TRUE(std::is_sorted(diags.begin(), diags.end(),
                             DiagnosticBefore));
}

TEST(Lint, RenderTextFormat) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.code = "XQL001";
  d.line = 3;
  d.col = 7;
  d.message = "msg";
  EXPECT_EQ(RenderDiagnosticText(d), "line 3:7: warning XQL001: msg");
}

}  // namespace
}  // namespace xqb
