// Unit tests for the interprocedural effect analysis: read/write path
// summaries, kParam substitution at call sites, fixpoint convergence on
// (mutually) recursive functions, snap absorption, ⊤ widening, and the
// pinned boolean projection onto PurityAnalysis.

#include <gtest/gtest.h>

#include "analysis/effects.h"
#include "core/normalize.h"
#include "core/purity.h"
#include "frontend/parser.h"

namespace xqb {
namespace {

class EffectsTest : public ::testing::Test {
 protected:
  /// Parses + normalizes `query`, runs the function fixpoint, and
  /// returns the body summary. Keeps the program alive for follow-up
  /// queries against `effects_`.
  EffectSummary Summarize(const char* query) {
    auto program = ParseProgram(query);
    EXPECT_TRUE(program.ok()) << program.status();
    program_ = std::move(*program);
    NormalizeProgram(&program_);
    effects_ = EffectAnalysis();
    effects_.AnalyzeProgram(program_);
    return effects_.Summarize(*program_.body);
  }

  Program program_;
  EffectAnalysis effects_;
};

TEST_F(EffectsTest, PureNavigationReadsTheDocument) {
  EffectSummary s = Summarize("count(doc('d')/r/item)");
  EXPECT_FALSE(s.has_update);
  EXPECT_FALSE(s.has_snap);
  EXPECT_TRUE(s.writes.empty());
  EXPECT_EQ(s.reads.ToString(), "{doc(d)/r/item}");
}

TEST_F(EffectsTest, DeleteWritesTheParentRegion) {
  // delete removes children of the target's parent, so the write is
  // parent-truncated (docs/ANALYSIS.md §3).
  EffectSummary s = Summarize("delete { doc('d')/r/item }");
  EXPECT_TRUE(s.has_update);
  EXPECT_EQ(s.writes.ToString(), "{doc(d)/r}");
}

TEST_F(EffectsTest, InsertIntoWritesTheTargetSubtree) {
  EffectSummary s =
      Summarize("insert { <a/> } into { doc('d')/r }");
  EXPECT_TRUE(s.has_update);
  EXPECT_EQ(s.writes.ToString(), "{doc(d)/r}");
  // Distinct documents stay provably disjoint.
  PathSet other;
  other.Add(AccessPath::Document("e"));
  EXPECT_FALSE(s.writes.MayOverlap(other));
}

TEST_F(EffectsTest, SnapAbsorbsUpdateButKeepsWrites) {
  EffectSummary s =
      Summarize("snap { insert { <a/> } into { doc('d')/r } }");
  EXPECT_FALSE(s.has_update);
  EXPECT_TRUE(s.has_snap);
  EXPECT_EQ(s.writes.ToString(), "{doc(d)/r}");
}

TEST_F(EffectsTest, DynamicDocNameWidensToTop) {
  EffectSummary s =
      Summarize("delete { doc(concat('a', 'b'))/r }");
  EXPECT_TRUE(s.writes.top());
}

TEST_F(EffectsTest, ParamSubstitutionAtCallSites) {
  // The function summary keeps a kParam placeholder; the call site
  // substitutes the argument's paths, so the body's delete lands on
  // doc(d)/r — not ⊤ and not a free variable.
  EffectSummary s = Summarize(
      "declare function local:purge($x) { delete { $x/old } };"
      "local:purge(doc('d')/r)");
  EXPECT_TRUE(s.has_update);
  EXPECT_EQ(s.writes.ToString(), "{doc(d)/r}");

  const EffectSummary* fn = effects_.FunctionSummary("local:purge");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->writes.ToString(), "{param($x)}");
  EXPECT_EQ(effects_.FunctionSummary("purge"), fn);  // alias lookup
  EXPECT_EQ(effects_.FunctionSummary("fn:not"), nullptr);
}

TEST_F(EffectsTest, RecursiveFunctionReachesFixpoint) {
  EffectSummary s = Summarize(
      "declare function local:walk($n) {"
      "  if (empty($n/*)) then insert { <leaf/> } into { doc('out')/r }"
      "  else for $c in $n/* return local:walk($c)"
      "};"
      "local:walk(doc('in')/tree)");
  EXPECT_TRUE(s.has_update);
  // Whatever the fixpoint converges to, it must keep the two document
  // roots apart.
  PathSet out;
  out.Add(AccessPath::Document("out"));
  PathSet in;
  in.Add(AccessPath::Document("in"));
  EXPECT_TRUE(s.writes.MayOverlap(out));
  EXPECT_FALSE(s.writes.MayOverlap(in));
}

TEST_F(EffectsTest, MutualRecursionTerminatesAndUnions) {
  EffectSummary s = Summarize(
      "declare function local:even($n) {"
      "  if ($n = 0) then delete { doc('a')/r } else local:odd($n - 1)"
      "};"
      "declare function local:odd($n) {"
      "  if ($n = 1) then delete { doc('b')/r } else local:even($n - 1)"
      "};"
      "local:even(10)");
  EXPECT_TRUE(s.has_update);
  PathSet a;
  a.Add(AccessPath::Document("a"));
  PathSet b;
  b.Add(AccessPath::Document("b"));
  EXPECT_TRUE(s.writes.MayOverlap(a));
  EXPECT_TRUE(s.writes.MayOverlap(b));
}

TEST_F(EffectsTest, ConstructedNodesAreLocal) {
  EffectSummary s = Summarize("insert { <a/> } into { <r/> }");
  EXPECT_TRUE(s.has_update);
  EXPECT_TRUE(s.writes.AllLocal());
}

TEST_F(EffectsTest, ValuePathsAreNotReads) {
  // Returning a navigation result does not by itself read it — the
  // boundary read is the caller's responsibility via ValuePaths.
  auto program = ParseProgram("doc('d')/r");
  ASSERT_TRUE(program.ok());
  NormalizeProgram(&*program);
  EffectAnalysis effects;
  effects.AnalyzeProgram(*program);
  ExprEffects ee = effects.AnalyzeExpr(*program->body, PathEnv{});
  EXPECT_EQ(ee.value.ToString(), "{doc(d)/r}");
  EXPECT_FALSE(ee.summary.reads.MayOverlap(ee.value));
}

TEST_F(EffectsTest, EnvThreadsLetBindings) {
  auto program = ParseProgram("delete { $x/old }");
  ASSERT_TRUE(program.ok());
  NormalizeProgram(&*program);
  EffectAnalysis effects;
  effects.AnalyzeProgram(*program);
  PathEnv env;
  PathSet x;
  x.Add(AccessPath::Document("d").Child(
      PathStep{PathStep::Kind::kChild, "r"}));
  env["x"] = x;
  EffectSummary s = effects.Summarize(*program->body, env);
  EXPECT_EQ(s.writes.ToString(), "{doc(d)/r}");
}

TEST_F(EffectsTest, NondetAndDefaultSnapFlags) {
  EXPECT_TRUE(Summarize("snap nondeterministic { delete { $x } }")
                  .has_nondet_snap);
  EffectSummary dflt = Summarize("snap { delete { $x } }");
  EXPECT_TRUE(dflt.has_default_snap);
  EXPECT_FALSE(dflt.has_nondet_snap);
  EXPECT_FALSE(Summarize("snap ordered { delete { $x } }")
                   .has_default_snap);
}

// The PurityInfo flags are exactly the boolean projection of the
// path-level summary: pin the equivalence over a mixed corpus so the
// two analyses cannot drift apart.
TEST_F(EffectsTest, BooleanProjectionMatchesPurityAnalysis) {
  const char* corpus[] = {
      "1 + 1",
      "for $x in 1 to 10 return $x * 2",
      "insert { <a/> } into { doc('d')/r }",
      "delete { doc('d')/r/a }",
      "snap { insert { <a/> } into { doc('d')/r } }",
      "snap nondeterministic { delete { $x } }",
      "fn:trace(1, 'msg')",
      "declare function local:f() { delete { doc('d')/r } };"
      "local:f()",
      "declare function local:f($n) {"
      "  if ($n = 0) then 0 else local:f($n - 1) };"
      "local:f(3)",
      "(snap { delete { $x } }, insert { <b/> } into { $y })",
  };
  for (const char* query : corpus) {
    auto program = ParseProgram(query);
    ASSERT_TRUE(program.ok()) << query;
    NormalizeProgram(&*program);
    PurityAnalysis purity;
    purity.AnalyzeProgram(&*program);
    PurityInfo info = purity.Analyze(*program->body);
    EffectSummary s = purity.effects().Summarize(*program->body);
    EXPECT_EQ(info.has_update, s.has_update) << query;
    EXPECT_EQ(info.has_snap, s.has_snap) << query;
    EXPECT_EQ(info.has_io, s.has_io) << query;
  }
}

}  // namespace
}  // namespace xqb
