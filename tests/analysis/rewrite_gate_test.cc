// The disjointness-widened optimizer gates. Plan-level: the group-join
// rewrite (RW1) now fires on update-emitting inner returns whose snap
// writes are provably disjoint from everything the rewrite freezes, and
// still refuses when the write set may overlap. Execution-level: the
// widened plan is differentially tested against the legacy
// boolean-gated plan — byte-identical results AND byte-identical store
// state (Δ application order) — and the widened parallel-snap gate is
// checked for thread-count invariance.

#include <gtest/gtest.h>

#include "algebra/compile.h"
#include "algebra/rewrite.h"
#include "core/engine.h"
#include "core/normalize.h"
#include "core/purity.h"
#include "frontend/parser.h"

namespace xqb {
namespace {

// Cross-document join whose inner return snap-inserts into a THIRD
// document: the audit writes cannot alias the build side (doc(log)),
// the probe keys, or the outer input (doc(people)), so hoisting the
// build ahead of the outer loop cannot change what any frozen
// expression sees.
constexpr const char* kDisjointAuditJoin = R"XQ(
for $p in doc('people')/people/person
let $a :=
  for $l in doc('log')/log/entry
  where $l/@who = $p/@id
  return (snap { insert { <audit who="{$l/@who}"/> }
                 into { doc('audit')/trail } }, $l)
return <row id="{$p/@id}">{ count($a) }</row>
)XQ";

// Same shape, but the snap writes into doc('log')/log — the very
// region the hoisted build side reads — so the widening must refuse.
constexpr const char* kOverlappingJoin = R"XQ(
for $p in doc('people')/people/person
let $a :=
  for $l in doc('log')/log/entry
  where $l/@who = $p/@id
  return (snap { insert { <audit who="{$l/@who}"/> }
                 into { doc('log')/log } }, $l)
return <row id="{$p/@id}">{ count($a) }</row>
)XQ";

class RewriteGateTest : public ::testing::Test {
 protected:
  RewriteStats OptimizeQuery(const char* query,
                             const RewriteOptions& options = {}) {
    auto program = ParseProgram(query);
    EXPECT_TRUE(program.ok()) << program.status();
    program_ = std::move(*program);
    NormalizeProgram(&program_);
    purity_.AnalyzeProgram(&program_);
    plan_ = CompileQueryToPlan(*program_.body);
    EXPECT_NE(plan_, nullptr);
    return OptimizePlan(&plan_, purity_, options);
  }

  Program program_;
  PurityAnalysis purity_;
  PlanPtr plan_;
};

TEST_F(RewriteGateTest, DisjointSnapWritesNoLongerBlockTheGroupJoin) {
  RewriteStats stats = OptimizeQuery(kDisjointAuditJoin);
  EXPECT_EQ(stats.group_joins, 1);
  EXPECT_EQ(stats.disjoint_widened, 1);
}

TEST_F(RewriteGateTest, LegacyBooleanGateStillRejectsUnderAblation) {
  RewriteOptions legacy;
  legacy.disjoint_gates = false;
  RewriteStats stats = OptimizeQuery(kDisjointAuditJoin, legacy);
  EXPECT_EQ(stats.group_joins, 0);
  EXPECT_EQ(stats.disjoint_widened, 0);
}

TEST_F(RewriteGateTest, OverlappingSnapWritesStillBlockTheGroupJoin) {
  RewriteStats stats = OptimizeQuery(kOverlappingJoin);
  EXPECT_EQ(stats.group_joins, 0);
  EXPECT_EQ(stats.disjoint_widened, 0);
}

TEST_F(RewriteGateTest, WriteIntoTheOuterInputStillBlocks) {
  // The snap writes doc('people'), which the frozen outer probe key
  // ($p/@id) reads: applying writes during the probe could change
  // later keys relative to the nested-loop order. Must refuse.
  RewriteStats stats = OptimizeQuery(R"XQ(
for $p in doc('people')/people/person
let $a :=
  for $l in doc('log')/log/entry
  where $l/@who = $p/@id
  return (snap { insert { <seen/> } into { doc('people')/people } },
          $l)
return <row id="{$p/@id}">{ count($a) }</row>
)XQ");
  EXPECT_EQ(stats.group_joins, 0);
}

TEST_F(RewriteGateTest, PendingOnlyUpdatesStillJoinWithoutWidening) {
  // The pre-existing behavior: a bare (snapless) insert emits pending
  // Δ only, needs no disjointness argument, and must not count as a
  // widening win.
  RewriteStats stats = OptimizeQuery(R"XQ(
for $p in doc('people')/people/person
let $a :=
  for $l in doc('log')/log/entry
  where $l/@who = $p/@id
  return (insert { <audit/> } into { doc('audit')/trail }, $l)
return <row id="{$p/@id}">{ count($a) }</row>
)XQ");
  EXPECT_EQ(stats.group_joins, 1);
  EXPECT_EQ(stats.disjoint_widened, 0);
}

// ---- Differential execution: widened vs legacy-gated plans ----

constexpr const char* kPeopleXml =
    "<people>"
    "<person id=\"p1\"/><person id=\"p2\"/><person id=\"p3\"/>"
    "<person id=\"p4\"/>"
    "</people>";
constexpr const char* kLogXml =
    "<log>"
    "<entry who=\"p2\" n=\"1\"/><entry who=\"p1\" n=\"2\"/>"
    "<entry who=\"p2\" n=\"3\"/><entry who=\"p4\" n=\"4\"/>"
    "<entry who=\"p1\" n=\"5\"/>"
    "</log>";

struct RunOutcome {
  std::string result;
  std::string audit;
  ExecStats stats;
};

RunOutcome RunAuditJoin(bool disjoint_gates) {
  Engine engine;
  EXPECT_TRUE(engine.LoadDocumentFromString("people", kPeopleXml).ok());
  EXPECT_TRUE(engine.LoadDocumentFromString("log", kLogXml).ok());
  EXPECT_TRUE(engine.LoadDocumentFromString("audit", "<trail/>").ok());
  ExecOptions options;
  options.optimize = true;
  options.collect_stats = true;
  options.rewrites.disjoint_gates = disjoint_gates;
  auto result = engine.Execute(kDisjointAuditJoin, options);
  EXPECT_TRUE(result.ok()) << result.status();
  RunOutcome out;
  out.result = engine.Serialize(*result);
  out.stats = engine.last_stats();  // before the audit read clobbers it
  auto audit = engine.Execute("doc('audit')");
  EXPECT_TRUE(audit.ok());
  out.audit = engine.Serialize(*audit);
  return out;
}

TEST(RewriteGateDifferential, WidenedPlanIsObservationallyIdentical) {
  RunOutcome widened = RunAuditJoin(/*disjoint_gates=*/true);
  RunOutcome legacy = RunAuditJoin(/*disjoint_gates=*/false);

  // The two runs took different plans...
  EXPECT_EQ(widened.stats.rw_group_joins, 1);
  EXPECT_EQ(widened.stats.rw_disjoint_wins, 1);
  EXPECT_EQ(legacy.stats.rw_group_joins, 0);
  EXPECT_EQ(legacy.stats.rw_disjoint_wins, 0);

  // ...but every observable is byte-identical: the query result, the
  // audit trail (one <audit> per match, in (person, entry) iteration
  // order — Δ application order), and the applied-update count.
  EXPECT_EQ(widened.result, legacy.result);
  EXPECT_EQ(widened.audit, legacy.audit);
  EXPECT_EQ(widened.stats.updates_applied, legacy.stats.updates_applied);
  EXPECT_EQ(widened.stats.snaps_applied, legacy.stats.snaps_applied);

  // And the workload is real: every log entry matched some person.
  EXPECT_EQ(widened.stats.updates_applied, 5);
  EXPECT_NE(widened.audit.find("who=\"p2\""), std::string::npos);
}

// ---- Widened parallel-snap gate: thread-count invariance ----

TEST(ParallelSnapWidening, LocalWriteSnapBodiesRunParallelUnchanged) {
  // The snap inside the loop body writes only the freshly copied tree
  // ($c is a copy made by the body itself), so workers mutate
  // thread-confined nodes — the widened gate admits it where the
  // boolean pure() gate refused. The copy must happen inside the
  // parallelized body: a binding made outside it is a free variable to
  // the analysis and stays conservatively non-local.
  const char* query = R"XQ(
for $p in doc('people')/people/person
return snap { let $c := copy { $p }
              return (rename { $c } to { "audited" }, $c) }
)XQ";
  auto run = [&](int threads) {
    Engine engine;
    EXPECT_TRUE(
        engine.LoadDocumentFromString("people", kPeopleXml).ok());
    ExecOptions options;
    options.threads = threads;
    options.collect_stats = true;
    auto result = engine.Execute(query, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::make_pair(engine.Serialize(*result),
                          engine.last_stats());
  };
  auto [serial, serial_stats] = run(1);
  auto [parallel, parallel_stats] = run(8);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("<audited"), std::string::npos);
  // The counters fold deterministically across workers.
  EXPECT_EQ(serial_stats.snaps_applied, parallel_stats.snaps_applied);
  EXPECT_EQ(serial_stats.updates_applied,
            parallel_stats.updates_applied);
  // One snap per person plus the implicit top-level snap.
  EXPECT_EQ(serial_stats.snaps_applied, 5);
  // And the parallel run actually exercised the widened gate: the old
  // effect-free-only gate would have kept this region serial.
  EXPECT_GT(parallel_stats.parallel_regions, 0);
  EXPECT_EQ(serial_stats.parallel_regions, 0);
}

}  // namespace
}  // namespace xqb
