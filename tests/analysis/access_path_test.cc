// Unit tests for the access-path lattice: step construction and
// widening, MayAlias root/step reasoning, and PathSet cap behavior.

#include <gtest/gtest.h>

#include "analysis/access_path.h"

namespace xqb {
namespace {

PathStep Child(const char* name) {
  PathStep s;
  s.kind = PathStep::Kind::kChild;
  s.name = name;
  return s;
}

PathStep Descendant(const char* name) {
  PathStep s;
  s.kind = PathStep::Kind::kDescendant;
  s.name = name;
  return s;
}

PathStep Attribute(const char* name) {
  PathStep s;
  s.kind = PathStep::Kind::kAttribute;
  s.name = name;
  return s;
}

TEST(AccessPathTest, ToStringRendersRootsAndSteps) {
  AccessPath p = AccessPath::Document("d").Child(Child("r"));
  p = p.Child(Descendant("item")).Child(Attribute("id"));
  EXPECT_EQ(p.ToString(), "doc(d)/r//item/@id");
  EXPECT_EQ(AccessPath::Variable("x").ToString(), "$x");
  EXPECT_EQ(AccessPath::Local().ToString(), "local()");
  EXPECT_EQ(AccessPath::Any().ToString(), "any()");
}

TEST(AccessPathTest, ChildWidensAtMaxSteps) {
  AccessPath p = AccessPath::Document("d");
  for (size_t i = 0; i < AccessPath::kMaxSteps; ++i) {
    p = p.Child(Child("a"));
  }
  ASSERT_EQ(p.steps.size(), AccessPath::kMaxSteps);
  // One more child step collapses the tail into descendant-wildcard
  // instead of growing the vector.
  AccessPath widened = p.Child(Child("b"));
  ASSERT_EQ(widened.steps.size(), AccessPath::kMaxSteps + 1);
  EXPECT_EQ(widened.steps.back().kind, PathStep::Kind::kDescendant);
  EXPECT_TRUE(widened.steps.back().name.empty());
  // And further steps below the descendant wildcard are absorbed.
  AccessPath again = widened.Child(Child("c"));
  EXPECT_EQ(again, widened);
}

TEST(AccessPathTest, ParentTruncatesLastStep) {
  AccessPath p =
      AccessPath::Document("d").Child(Child("r")).Child(Child("x"));
  EXPECT_EQ(p.Parent().ToString(), "doc(d)/r");
  EXPECT_EQ(p.Root().ToString(), "doc(d)");
  EXPECT_EQ(AccessPath::Document("d").Parent().ToString(), "doc(d)");
}

TEST(MayAliasTest, AnyAliasesEverything) {
  EXPECT_TRUE(MayAlias(AccessPath::Any(), AccessPath::Local()));
  EXPECT_TRUE(MayAlias(AccessPath::Document("d"), AccessPath::Any()));
}

TEST(MayAliasTest, LocalIsDisjointFromDocuments) {
  // Normalization copies insert/replace sources, so freshly built
  // nodes never end up attached inside a named tree.
  EXPECT_FALSE(MayAlias(AccessPath::Local(), AccessPath::Document("d")));
  EXPECT_FALSE(MayAlias(AccessPath::Document("d"), AccessPath::Local()));
  // But local vs variable stays conservative: a variable may be bound
  // to a locally constructed tree.
  EXPECT_TRUE(MayAlias(AccessPath::Local(), AccessPath::Variable("v")));
}

TEST(MayAliasTest, DistinctDocumentNamesAreDisjoint) {
  AccessPath a = AccessPath::Document("people").Child(Descendant("x"));
  AccessPath b = AccessPath::Document("audit").Child(Descendant("x"));
  EXPECT_FALSE(MayAlias(a, b));
  EXPECT_TRUE(MayAlias(a, AccessPath::Document("people")));
}

TEST(MayAliasTest, SameDocumentUsesStepOverlap) {
  AccessPath r = AccessPath::Document("d").Child(Child("r"));
  AccessPath ra = r.Child(Child("a"));
  AccessPath rb = r.Child(Child("b"));
  EXPECT_FALSE(MayAlias(ra, rb));          // sibling names differ
  EXPECT_TRUE(MayAlias(r, ra));            // ancestor covers subtree
  EXPECT_TRUE(MayAlias(ra, ra));           // self
  // Descendant steps reach arbitrary depth → overlap.
  EXPECT_TRUE(MayAlias(r.Child(Descendant("a")), rb));
  // child vs attribute at the same depth select disjoint node kinds.
  EXPECT_FALSE(MayAlias(r.Child(Attribute("a")), r.Child(Child("a"))));
  // A wildcard name matches anything.
  EXPECT_TRUE(MayAlias(r.Child(Child("")), rb));
}

TEST(MayAliasTest, DifferentVariablesStayConservative) {
  // Two distinct variables may be bound to overlapping trees by the
  // host, so the analysis must not prove them apart.
  EXPECT_TRUE(
      MayAlias(AccessPath::Variable("a"), AccessPath::Variable("b")));
  EXPECT_TRUE(
      MayAlias(AccessPath::Variable("a"), AccessPath::Document("d")));
  // The same variable refines by steps.
  AccessPath va = AccessPath::Variable("v").Child(Child("a"));
  AccessPath vb = AccessPath::Variable("v").Child(Child("b"));
  EXPECT_FALSE(MayAlias(va, vb));
}

TEST(PathSetTest, AddDeduplicatesAndOverflowsToTop) {
  PathSet s;
  EXPECT_TRUE(s.empty());
  s.Add(AccessPath::Document("d"));
  s.Add(AccessPath::Document("d"));
  EXPECT_FALSE(s.top());
  EXPECT_EQ(s.ToString(), "{doc(d)}");
  for (size_t i = 0; i < PathSet::kMaxPaths; ++i) {
    s.Add(AccessPath::Document("d" + std::to_string(i)));
  }
  EXPECT_TRUE(s.top());
  EXPECT_EQ(s.ToString(), "T");
}

TEST(PathSetTest, AddingAnyWidensToTop) {
  PathSet s;
  s.Add(AccessPath::Any());
  EXPECT_TRUE(s.top());
}

TEST(PathSetTest, UnionAndOverlap) {
  PathSet people;
  people.Add(AccessPath::Document("people").Child(Descendant("p")));
  PathSet audit;
  audit.Add(AccessPath::Document("audit").Child(Child("log")));
  EXPECT_FALSE(people.MayOverlap(audit));

  PathSet both = people;
  both.UnionWith(audit);
  EXPECT_TRUE(both.MayOverlap(audit));
  EXPECT_TRUE(both.MayOverlap(people));

  // Empty sets overlap nothing, even ⊤.
  PathSet empty;
  EXPECT_FALSE(empty.MayOverlap(PathSet::Top()));
  EXPECT_FALSE(PathSet::Top().MayOverlap(empty));
  EXPECT_TRUE(PathSet::Top().MayOverlap(people));
}

TEST(PathSetTest, AllLocal) {
  PathSet s;
  EXPECT_TRUE(s.AllLocal());  // vacuously
  s.Add(AccessPath::Local().Child(Child("a")));
  EXPECT_TRUE(s.AllLocal());
  s.Add(AccessPath::Document("d"));
  EXPECT_FALSE(s.AllLocal());
  EXPECT_FALSE(PathSet::Top().AllLocal());
}

}  // namespace
}  // namespace xqb
