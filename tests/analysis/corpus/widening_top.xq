(snap { delete { doc(concat("a", "udit"))/log/e } },
 count(doc("people")/site/person))
