insert { <logentry time="now"/> } into { doc("audit")/log }
