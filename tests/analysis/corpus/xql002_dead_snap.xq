snap { count(doc("d")/r/*) }
