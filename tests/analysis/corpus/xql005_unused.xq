declare variable $unused := 1;
declare function local:helper($x) { $x + 1 };
let $dead := 2
return 42
