(snap { delete { doc("d")/r/old } },
 count(doc("d")/r/*))
