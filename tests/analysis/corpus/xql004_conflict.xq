snap {
  (rename { doc("d")/r/item } to { "a" },
   rename { doc("d")/r/item } to { "b" })
}
