declare variable $_scratch := 1;
declare function local:_hidden() { 1 };
let $_tmp := 2
return 1
