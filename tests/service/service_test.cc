// End-to-end tests for the query service: cache-through prepare,
// read-only vs. effectful classification, writer serialization under
// concurrent clients, context-fingerprint invalidation, shedding and
// accounting.

#include "service/service.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "telemetry/metrics.h"

namespace xqb {
namespace {

/// Snapshot of the registry's xqb_requests_total series. The registry
/// is process-global (shared across QueryService instances and tests in
/// this binary), so assertions work on deltas, never absolute values.
struct RequestCounterSnapshot {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t shed = 0;
  uint64_t cancelled = 0;

  static RequestCounterSnapshot Take() {
    MetricRegistry& registry = MetricRegistry::Default();
    auto value = [&](const char* status) {
      return registry
          .GetCounter("xqb_requests_total", "", {{"status", status}})
          ->Value();
    };
    RequestCounterSnapshot snap;
    snap.submitted = value("submitted");
    snap.completed = value("completed");
    snap.failed = value("failed");
    snap.shed = value("shed");
    snap.cancelled = value("cancelled");
    return snap;
  }
};

TEST(QueryServiceTest, SubmitRunsAndSerializes) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<r><c>5</c></r>").ok());
  QueryService service(&engine);
  auto response = service.Submit({.query = "count(doc('d')/r/c)"});
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.result_xml, "1");
  EXPECT_TRUE(response.read_only);
  EXPECT_EQ(response.stats.cache_misses, 1);
  EXPECT_EQ(response.stats.cache_hits, 0);
}

TEST(QueryServiceTest, SecondSubmitHitsCache) {
  Engine engine;
  QueryService service(&engine);
  ASSERT_TRUE(service.Submit({.query = "1 + 1"}).status.ok());
  auto response = service.Submit({.query = "1 + 1"});
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.stats.cache_hits, 1);
  EXPECT_EQ(response.stats.cache_misses, 0);
  const QueryService::Counters counters = service.counters();
  EXPECT_EQ(counters.cache.hits, 1);
  EXPECT_EQ(counters.cache.misses, 1);
  EXPECT_EQ(counters.completed, 2);
}

TEST(QueryServiceTest, EffectfulRequestIsExclusive) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<r/>").ok());
  QueryService service(&engine);
  auto response =
      service.Submit({.query = "snap insert { <e/> } into { doc('d')/r }"});
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_FALSE(response.read_only);
  EXPECT_EQ(service.counters().scheduler.exclusive_runs, 1);
}

TEST(QueryServiceTest, StaticErrorCountsAsFailed) {
  Engine engine;
  QueryService service(&engine);
  auto response = service.Submit({.query = "$undefined_variable"});
  EXPECT_FALSE(response.status.ok());
  const QueryService::Counters counters = service.counters();
  EXPECT_EQ(counters.failed, 1);
  EXPECT_EQ(counters.completed, 0);
  EXPECT_EQ(counters.submitted, 1);
}

TEST(QueryServiceTest, BindVariableInvalidatesCachedPlan) {
  Engine engine;
  QueryService service(&engine);
  ASSERT_TRUE(service.Submit({.query = "1 + 1"}).status.ok());
  ASSERT_TRUE(service.Submit({.query = "1 + 1"}).status.ok());
  EXPECT_EQ(service.counters().cache.hits, 1);

  // Changing the variable set changes the static-context fingerprint:
  // the cached plan is stale (its static check ran against the old
  // context) and must be re-prepared, not served.
  engine.BindVariable("x", Sequence{Item::Integer(1)});
  auto response = service.Submit({.query = "1 + 1"});
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.stats.cache_misses, 1);
  EXPECT_EQ(service.counters().cache.invalidations, 1);

  // And a query that needs the new binding now prepares fine.
  auto uses_x = service.Submit({.query = "$x + 1"});
  ASSERT_TRUE(uses_x.status.ok()) << uses_x.status.ToString();
  EXPECT_EQ(uses_x.result_xml, "2");
}

TEST(QueryServiceTest, ConcurrentWritersSerializeOnSharedCounter) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<r><c>0</c></r>").ok());
  QueryService service(&engine);

  // Each submit increments the shared counter by replacing its text.
  // Lost updates (two writers interleaving) would make the final value
  // fall short of the submit count — the exclusive-writer discipline is
  // exactly what this asserts.
  const std::string increment =
      "snap replace { doc('d')/r/c/text() } with { doc('d')/r/c + 1 }";
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto response = service.Submit({.query = increment});
        EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  auto read = service.Submit({.query = "string(doc('d')/r/c)"});
  ASSERT_TRUE(read.status.ok());
  EXPECT_EQ(read.result_xml, std::to_string(kThreads * kPerThread));
  const QueryService::Counters counters = service.counters();
  EXPECT_EQ(counters.scheduler.exclusive_runs, kThreads * kPerThread);
  EXPECT_EQ(counters.completed, kThreads * kPerThread + 1);
}

TEST(QueryServiceTest, MixedWorkloadAccountingAddsUp) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<r><c>0</c></r>").ok());
  QueryService service(&engine);
  const RequestCounterSnapshot before = RequestCounterSnapshot::Take();
  const std::vector<std::string> workload = {
      "count(doc('d')/r/c)",
      "snap rename { doc('d')/r/c[1] } to { \"c\" }",
      "string(doc('d')/r/c[1])",
      "doc('d')/r/c[1]",
  };
  constexpr int kThreads = 6;
  constexpr int kRounds = 20;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        for (const std::string& query : workload) {
          auto response = service.Submit({.query = query});
          EXPECT_TRUE(response.status.ok()) << response.status.ToString();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const QueryService::Counters counters = service.counters();
  const int64_t total =
      static_cast<int64_t>(kThreads) * kRounds * workload.size();
  EXPECT_EQ(counters.submitted, total);
  EXPECT_EQ(counters.completed + counters.failed + counters.shed +
                counters.cancelled,
            total);
  EXPECT_EQ(counters.completed, total);
  EXPECT_EQ(counters.cache.hits + counters.cache.misses, total);
  // Every run of the rename line (and nothing else) was exclusive.
  EXPECT_EQ(counters.scheduler.exclusive_runs,
            static_cast<int64_t>(kThreads) * kRounds);

  // The registry counters are bumped at the same sites as the service's
  // private atomics, so their deltas must obey the same invariant and
  // match the Counters snapshot exactly.
  const RequestCounterSnapshot after = RequestCounterSnapshot::Take();
  EXPECT_EQ(after.submitted - before.submitted,
            static_cast<uint64_t>(counters.submitted));
  EXPECT_EQ(after.completed - before.completed,
            static_cast<uint64_t>(counters.completed));
  EXPECT_EQ(after.failed - before.failed,
            static_cast<uint64_t>(counters.failed));
  EXPECT_EQ(after.shed - before.shed, static_cast<uint64_t>(counters.shed));
  EXPECT_EQ(after.cancelled - before.cancelled,
            static_cast<uint64_t>(counters.cancelled));
  EXPECT_EQ(after.submitted - before.submitted,
            (after.completed - before.completed) +
                (after.failed - before.failed) + (after.shed - before.shed) +
                (after.cancelled - before.cancelled));
}

TEST(QueryServiceTest, DeadlineCoversQueueAndRun) {
  Engine engine;
  QueryService service(&engine);
  // An unconstrained request still completes.
  auto ok = service.Submit({.query = "1 + 1", .deadline_ms = 5'000});
  EXPECT_TRUE(ok.status.ok());
  // The ExecLimits deadline the run saw was reduced by the queue wait,
  // never the raw configured default.
  EXPECT_GE(ok.stats.queue_wait_ns, 0);
}

TEST(QueryServiceTest, ShedRequestsReportOverloaded) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<r><c>0</c></r>").ok());
  QueryServiceOptions options;
  options.scheduler.max_concurrent = 1;
  options.scheduler.queue_capacity = 1;
  QueryService service(&engine, options);

  const RequestCounterSnapshot before = RequestCounterSnapshot::Take();

  // Occupy the only slot with a slow effectful request (a spin via
  // recursion would be flaky; instead hold the scheduler directly).
  auto ticket = service.scheduler().EnterRequest(true, 0, 0, nullptr);
  ASSERT_TRUE(ticket.ok());

  // Fill the queue with one waiter...
  std::thread waiter([&] {
    auto response = service.Submit({.query = "1 + 1"});
    EXPECT_TRUE(response.status.ok());
  });
  while (service.scheduler().queued() < 1) {
    std::this_thread::yield();
  }
  // ...then the next submit sheds.
  auto shed = service.Submit({.query = "2 + 2"});
  EXPECT_EQ(shed.status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(service.counters().shed, 1);

  service.scheduler().ExitRequest(*ticket);
  waiter.join();

  // The shed outcome reached the registry too.
  const RequestCounterSnapshot after = RequestCounterSnapshot::Take();
  EXPECT_EQ(after.shed - before.shed, 1u);
  EXPECT_EQ(after.submitted - before.submitted, 2u);
}

}  // namespace
}  // namespace xqb
