// Tests for the sharded LRU plan cache: hit/miss/LRU discipline, byte
// budgets and eviction, fingerprint invalidation, counters.

#include "service/query_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"

namespace xqb {
namespace {

std::shared_ptr<const PreparedQuery> Prepare(Engine* engine,
                                             const std::string& query) {
  auto prepared = engine->Prepare(query);
  EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
  return std::make_shared<const PreparedQuery>(std::move(prepared).value());
}

TEST(QueryCacheTest, MissThenHit) {
  Engine engine;
  QueryCache cache;
  ExecStats stats;
  EXPECT_EQ(cache.Lookup("1 + 1", 7, &stats), nullptr);
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.cache_hits, 0);

  cache.Insert("1 + 1", 7, Prepare(&engine, "1 + 1"));
  auto hit = cache.Lookup("1 + 1", 7, &stats);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(stats.cache_hits, 1);

  const QueryCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.hits, 1);
  EXPECT_EQ(counters.misses, 1);
  EXPECT_EQ(counters.entries, 1);
}

TEST(QueryCacheTest, FingerprintMismatchInvalidates) {
  Engine engine;
  QueryCache cache;
  cache.Insert("1 + 1", 7, Prepare(&engine, "1 + 1"));
  // Same query under a different static-context fingerprint: the
  // cached plan is stale and must be dropped, not served.
  EXPECT_EQ(cache.Lookup("1 + 1", 8, nullptr), nullptr);
  EXPECT_EQ(cache.counters().invalidations, 1);
  EXPECT_EQ(cache.counters().entries, 0);
  // And the old fingerprint no longer matches anything either.
  EXPECT_EQ(cache.Lookup("1 + 1", 7, nullptr), nullptr);
}

TEST(QueryCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  Engine engine;
  QueryCacheOptions options;
  options.shards = 1;  // One shard so the LRU order is global.
  options.max_bytes = 3 * QueryCache::EntryCost("1 + 1");
  QueryCache cache(options);

  // Three same-cost entries fit; tight budgets like this one stay
  // exact because every key has the same length.
  cache.Insert("1 + 1", 0, Prepare(&engine, "1 + 1"));
  cache.Insert("2 + 2", 0, Prepare(&engine, "2 + 2"));
  cache.Insert("3 + 3", 0, Prepare(&engine, "3 + 3"));
  EXPECT_EQ(cache.counters().entries, 3);
  EXPECT_EQ(cache.counters().evictions, 0);

  // Touch the oldest so "2 + 2" becomes LRU, then overflow.
  EXPECT_NE(cache.Lookup("1 + 1", 0, nullptr), nullptr);
  ExecStats stats;
  cache.Insert("4 + 4", 0, Prepare(&engine, "4 + 4"), &stats);
  EXPECT_EQ(stats.cache_evictions, 1);
  EXPECT_EQ(cache.counters().entries, 3);
  EXPECT_EQ(cache.Lookup("2 + 2", 0, nullptr), nullptr);  // Evicted.
  EXPECT_NE(cache.Lookup("1 + 1", 0, nullptr), nullptr);  // Survived.
}

TEST(QueryCacheTest, OversizedEntryIsNotCached) {
  Engine engine;
  QueryCacheOptions options;
  options.shards = 1;
  // One byte below this entry's own cost: it can never fit.
  options.max_bytes = QueryCache::EntryCost("1 + 1") - 1;
  QueryCache cache(options);
  cache.Insert("1 + 1", 0, Prepare(&engine, "1 + 1"));
  EXPECT_EQ(cache.counters().entries, 0);
}

TEST(QueryCacheTest, ReplaceInPlaceKeepsOneEntry) {
  Engine engine;
  QueryCache cache;
  cache.Insert("1 + 1", 0, Prepare(&engine, "1 + 1"));
  cache.Insert("1 + 1", 0, Prepare(&engine, "1 + 1"));
  EXPECT_EQ(cache.counters().entries, 1);
  EXPECT_EQ(cache.counters().evictions, 0);
}

TEST(QueryCacheTest, ClearDropsEntriesKeepsCounters) {
  Engine engine;
  QueryCache cache;
  cache.Insert("1 + 1", 0, Prepare(&engine, "1 + 1"));
  EXPECT_NE(cache.Lookup("1 + 1", 0, nullptr), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.counters().entries, 0);
  EXPECT_EQ(cache.counters().bytes, 0);
  EXPECT_EQ(cache.counters().hits, 1);
  EXPECT_EQ(cache.Lookup("1 + 1", 0, nullptr), nullptr);
}

TEST(QueryCacheTest, HitKeepsPlanAliveAcrossEviction) {
  Engine engine;
  QueryCacheOptions options;
  options.shards = 1;
  options.max_bytes = QueryCache::EntryCost("1 + 1");
  QueryCache cache(options);
  cache.Insert("1 + 1", 0, Prepare(&engine, "1 + 1"));
  auto held = cache.Lookup("1 + 1", 0, nullptr);
  ASSERT_NE(held, nullptr);
  // Inserting a same-cost entry evicts the held one from the cache...
  cache.Insert("2 + 2", 0, Prepare(&engine, "2 + 2"));
  EXPECT_EQ(cache.Lookup("1 + 1", 0, nullptr), nullptr);
  // ...but the shared_ptr keeps the plan itself usable.
  auto result = engine.Run(*held);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(engine.Serialize(*result), "2");
}

TEST(QueryCacheTest, ConcurrentMixedTrafficStaysConsistent) {
  Engine engine;
  QueryCacheOptions options;
  options.shards = 4;
  QueryCache cache(options);
  const std::vector<std::string> queries = {"1 + 1", "2 + 2", "3 + 3",
                                            "4 + 4", "5 + 5"};
  std::vector<std::shared_ptr<const PreparedQuery>> plans;
  plans.reserve(queries.size());
  for (const std::string& q : queries) plans.push_back(Prepare(&engine, q));

  constexpr int kThreads = 8;
  constexpr int kIterations = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const size_t q = static_cast<size_t>(t + i) % queries.size();
        if (auto hit = cache.Lookup(queries[q], 0, nullptr)) {
          // The plan for query q must be the plan cached under q.
          EXPECT_EQ(hit.get(), plans[q].get());
        } else {
          cache.Insert(queries[q], 0, plans[q]);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const QueryCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.hits + counters.misses, kThreads * kIterations);
  EXPECT_LE(counters.entries, static_cast<int64_t>(queries.size()));
}

}  // namespace
}  // namespace xqb
