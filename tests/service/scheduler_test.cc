// Deterministic unit tests for the admission scheduler: reader
// concurrency, writer exclusivity, priority order, queue-full and
// queue-deadline shedding, cancellation while queued.

#include "service/scheduler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace xqb {
namespace {

using Ticket = RequestScheduler::Ticket;

/// Spins until `predicate` holds (bounded; fails the test on timeout).
template <typename Predicate>
void WaitFor(Predicate predicate, const char* what) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "timed out waiting for " << what;
}

TEST(RequestSchedulerTest, ReadersShareUpToMaxConcurrent) {
  RequestSchedulerOptions options;
  options.max_concurrent = 2;
  RequestScheduler scheduler(options);

  auto t1 = scheduler.EnterRequest(true, 0, 0, nullptr);
  auto t2 = scheduler.EnterRequest(true, 0, 0, nullptr);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(scheduler.active(), 2);

  // A third reader must wait for a slot.
  std::thread third([&] {
    auto t3 = scheduler.EnterRequest(true, 0, 0, nullptr);
    ASSERT_TRUE(t3.ok());
    scheduler.ExitRequest(*t3);
  });
  WaitFor([&] { return scheduler.queued() == 1; }, "third reader queued");
  EXPECT_EQ(scheduler.active(), 2);
  scheduler.ExitRequest(*t1);
  third.join();
  scheduler.ExitRequest(*t2);
  EXPECT_EQ(scheduler.active(), 0);
  EXPECT_EQ(scheduler.counters().admitted, 3);
}

TEST(RequestSchedulerTest, WriterExcludesEverything) {
  RequestScheduler scheduler;
  auto reader = scheduler.EnterRequest(true, 0, 0, nullptr);
  ASSERT_TRUE(reader.ok());

  std::vector<int> order;
  std::mutex order_mu;
  std::thread writer([&] {
    auto t = scheduler.EnterRequest(false, 0, 0, nullptr);
    ASSERT_TRUE(t.ok());
    {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(1);
    }
    // While the writer holds its slot nothing else may be active.
    EXPECT_EQ(scheduler.active(), 1);
    scheduler.ExitRequest(*t);
  });
  WaitFor([&] { return scheduler.queued() == 1; }, "writer queued");

  // A reader arriving behind the queued writer must not overtake it
  // (strict head-of-line admission).
  std::thread late_reader([&] {
    auto t = scheduler.EnterRequest(true, 0, 0, nullptr);
    ASSERT_TRUE(t.ok());
    {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(2);
    }
    scheduler.ExitRequest(*t);
  });
  WaitFor([&] { return scheduler.queued() == 2; }, "late reader queued");

  scheduler.ExitRequest(*reader);
  writer.join();
  late_reader.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(scheduler.counters().exclusive_runs, 1);
}

TEST(RequestSchedulerTest, HigherPriorityAdmitsFirst) {
  RequestSchedulerOptions options;
  options.max_concurrent = 1;
  RequestScheduler scheduler(options);
  // Hold the only slot while the queue builds up.
  auto hold = scheduler.EnterRequest(true, 0, 0, nullptr);
  ASSERT_TRUE(hold.ok());

  std::vector<int> order;
  std::mutex order_mu;
  std::vector<std::thread> threads;
  for (int priority : {1, 3, 2}) {
    threads.emplace_back([&, priority] {
      auto t = scheduler.EnterRequest(true, priority, 0, nullptr);
      ASSERT_TRUE(t.ok());
      {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(priority);
      }
      scheduler.ExitRequest(*t);
    });
    // Serialize arrivals so the (priority, seq) order is deterministic.
    WaitFor([&, n = static_cast<int>(threads.size())] {
      return scheduler.queued() == n;
    }, "waiter queued");
  }

  scheduler.ExitRequest(*hold);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(RequestSchedulerTest, QueueFullSheds) {
  RequestSchedulerOptions options;
  options.max_concurrent = 1;
  options.queue_capacity = 1;
  RequestScheduler scheduler(options);
  auto hold = scheduler.EnterRequest(true, 0, 0, nullptr);
  ASSERT_TRUE(hold.ok());

  std::thread waiter([&] {
    auto t = scheduler.EnterRequest(true, 0, 0, nullptr);
    ASSERT_TRUE(t.ok());
    scheduler.ExitRequest(*t);
  });
  WaitFor([&] { return scheduler.queued() == 1; }, "first waiter queued");

  // The queue is at capacity: the next arrival is shed immediately.
  auto shed = scheduler.EnterRequest(true, 0, 0, nullptr);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(scheduler.counters().shed_queue_full, 1);

  scheduler.ExitRequest(*hold);
  waiter.join();
}

TEST(RequestSchedulerTest, DeadlineExpiresInQueue) {
  RequestScheduler scheduler;
  auto hold = scheduler.EnterRequest(true, 0, 0, nullptr);
  ASSERT_TRUE(hold.ok());

  // A writer cannot run while the reader is active; its 50 ms budget
  // burns down in the queue.
  auto shed = scheduler.EnterRequest(false, 0, 50, nullptr);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(scheduler.counters().shed_deadline, 1);
  EXPECT_EQ(scheduler.queued(), 0);  // The shed waiter left the queue.
  scheduler.ExitRequest(*hold);
}

TEST(RequestSchedulerTest, CancelledWhileQueued) {
  RequestScheduler scheduler;
  auto hold = scheduler.EnterRequest(true, 0, 0, nullptr);
  ASSERT_TRUE(hold.ok());

  auto token = std::make_shared<CancellationToken>();
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token->Cancel();
  });
  auto cancelled = scheduler.EnterRequest(false, 0, 0, token);
  canceller.join();
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(scheduler.counters().cancelled_waiting, 1);
  EXPECT_EQ(scheduler.queued(), 0);
  scheduler.ExitRequest(*hold);
}

TEST(RequestSchedulerTest, AlreadyCancelledTokenIsRefusedAtEntry) {
  RequestScheduler scheduler;
  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  // Even with every slot free, a dead request must not be admitted —
  // it would run to completion before the guard's first poll.
  auto refused = scheduler.EnterRequest(true, 0, 0, token);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(scheduler.active(), 0);
  EXPECT_EQ(scheduler.counters().cancelled_waiting, 1);
}

TEST(RequestSchedulerTest, QueueWaitIsMeasured) {
  RequestScheduler scheduler;
  auto hold = scheduler.EnterRequest(true, 0, 0, nullptr);
  ASSERT_TRUE(hold.ok());
  EXPECT_GE(hold->queue_wait_ns, 0);

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    scheduler.ExitRequest(*hold);
  });
  auto waited = scheduler.EnterRequest(false, 0, 0, nullptr);
  releaser.join();
  ASSERT_TRUE(waited.ok());
  EXPECT_GE(waited->queue_wait_ns, 20 * 1'000'000);
  scheduler.ExitRequest(*waited);
}

}  // namespace
}  // namespace xqb
