// Concurrent Engine::Run on one shared PreparedQuery: results must be
// byte-identical to a serial run and the deterministic ExecStats
// counters thread-count-invariant. This pins the two mechanisms that
// make the service's parallel read path sound: the caller-owned stats
// sink (no shared last_stats_) and the thread-local allocation-gauge
// binding (each run charges its own gauge on a shared store).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "xml/serializer.h"

namespace xqb {
namespace {

/// Serializes through the thread-safe path (Engine::Serialize mutates
/// the engine's mutable last_stats_ and is single-threaded).
std::string Serialize(const Engine& engine, const Sequence& seq) {
  auto out = SerializeSequenceChecked(engine.store(), seq);
  EXPECT_TRUE(out.ok());
  return out.ok() ? *out : std::string();
}

TEST(ConcurrentRunTest, SharedPreparedQueryManyThreads) {
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadDocumentFromString(
                      "d", "<r><c>1</c><c>2</c><c>3</c><c>4</c></r>")
                  .ok());
  // Element construction allocates store nodes, so this query also
  // exercises concurrent Store::Allocate and per-run gauge accounting.
  auto prepared = engine.Prepare(
      "<sum>{ sum(for $c in doc('d')/r/c return $c + 0) }</sum>");
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(prepared->read_only);

  // Serial reference run.
  ExecOptions options;
  options.collect_stats = true;
  options.threads = 1;
  ExecStats serial_stats;
  auto serial = engine.Run(*prepared, options, &serial_stats, nullptr);
  ASSERT_TRUE(serial.ok());
  const std::string expected = Serialize(engine, *serial);
  EXPECT_EQ(expected, "<sum>10</sum>");

  constexpr int kThreads = 8;
  constexpr int kRuns = 25;
  struct PerThread {
    std::vector<std::string> results;
    std::vector<ExecStats> stats;
  };
  std::vector<PerThread> outputs(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      PerThread& mine = outputs[static_cast<size_t>(t)];
      for (int i = 0; i < kRuns; ++i) {
        ExecStats stats;
        auto result = engine.Run(*prepared, options, &stats, nullptr);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        mine.results.push_back(Serialize(engine, *result));
        mine.stats.push_back(stats);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (const PerThread& out : outputs) {
    ASSERT_EQ(out.results.size(), static_cast<size_t>(kRuns));
    for (const std::string& r : out.results) EXPECT_EQ(r, expected);
    for (const ExecStats& s : out.stats) {
      // The determinism contract extends across concurrency: every
      // deterministic counter matches the serial run exactly.
      EXPECT_EQ(s.snaps_applied, serial_stats.snaps_applied);
      EXPECT_EQ(s.updates_applied, serial_stats.updates_applied);
      EXPECT_EQ(s.guard_steps, serial_stats.guard_steps);
      EXPECT_EQ(s.result_cardinality, serial_stats.result_cardinality);
      // Per-run store-growth accounting: the thread-local gauge keeps
      // concurrent runs from charging each other's allocations.
      EXPECT_EQ(s.nodes_allocated, serial_stats.nodes_allocated);
    }
  }
}

TEST(ConcurrentRunTest, ConcurrentRunsRespectStoreGrowthLimit) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<r/>").ok());
  // Each run allocates far past the budget and keeps evaluating after
  // the trip (the guard surfaces gauge trips at Tick granularity), so
  // every run must fail. Gauge misattribution across threads — one run
  // charging another's gauge — would let some run slip through.
  auto prepared =
      engine.Prepare("<a>{ for $i in 1 to 1000 return <b/> }</a>");
  ASSERT_TRUE(prepared.ok());
  ExecOptions options;
  options.limits.max_store_growth = 10;

  constexpr int kThreads = 8;
  std::vector<Status> statuses(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ExecStats stats;
      auto result = engine.Run(*prepared, options, &stats, nullptr);
      statuses[static_cast<size_t>(t)] =
          result.ok() ? Status::OK() : result.status();
    });
  }
  for (std::thread& t : threads) t.join();
  for (const Status& status : statuses) {
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
        << status.ToString();
  }
}

TEST(ConcurrentRunTest, PreparedPurityClassification) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<r/>").ok());
  auto read = engine.Prepare("count(doc('d')/r)");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->read_only);
  EXPECT_TRUE(read->purity.pure());

  auto write = engine.Prepare("snap insert { <e/> } into { doc('d')/r }");
  ASSERT_TRUE(write.ok());
  EXPECT_FALSE(write->read_only);
  EXPECT_TRUE(write->purity.has_snap);

  // Pending updates without snap are still effect-free in the paper's
  // sense, but not read-only for scheduling: applying the implicit
  // top-level snap mutates the store.
  auto pending = engine.Prepare("insert { <e/> } into { doc('d')/r }");
  ASSERT_TRUE(pending.ok());
  EXPECT_FALSE(pending->read_only);

  // I/O (fn:trace) is classified effectful: its interleaving is
  // observable, so the service serializes it.
  auto io = engine.Prepare("trace(1, 'label')");
  ASSERT_TRUE(io.ok());
  EXPECT_FALSE(io->read_only);

  // A global initializer's effects count against the whole program.
  auto global = engine.Prepare(
      "declare variable $g := snap insert { <e/> } into { doc('d')/r }; "
      "1");
  ASSERT_TRUE(global.ok());
  EXPECT_FALSE(global->read_only);
}

TEST(ConcurrentRunTest, FingerprintTracksVariableSet) {
  Engine engine;
  const uint64_t f0 = engine.StaticContextFingerprint();
  engine.BindVariable("x", Sequence{Item::Integer(1)});
  const uint64_t f1 = engine.StaticContextFingerprint();
  EXPECT_NE(f0, f1);
  // Rebinding the same name (any value) keeps the fingerprint: only
  // the name set matters to static checking.
  engine.BindVariable("x", Sequence{Item::Integer(2)});
  EXPECT_EQ(engine.StaticContextFingerprint(), f1);
  engine.BindVariable("y", Sequence{Item::Integer(3)});
  EXPECT_NE(engine.StaticContextFingerprint(), f1);
  // Loading documents does not move it either.
  const uint64_t f2 = engine.StaticContextFingerprint();
  ASSERT_TRUE(engine.LoadDocumentFromString("d", "<r/>").ok());
  EXPECT_EQ(engine.StaticContextFingerprint(), f2);
}

}  // namespace
}  // namespace xqb
