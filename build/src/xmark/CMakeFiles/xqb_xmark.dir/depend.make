# Empty dependencies file for xqb_xmark.
# This may be replaced when dependencies are built.
