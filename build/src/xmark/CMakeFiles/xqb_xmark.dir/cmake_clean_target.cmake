file(REMOVE_RECURSE
  "libxqb_xmark.a"
)
