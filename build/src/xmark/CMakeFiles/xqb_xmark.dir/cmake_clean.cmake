file(REMOVE_RECURSE
  "CMakeFiles/xqb_xmark.dir/generator.cc.o"
  "CMakeFiles/xqb_xmark.dir/generator.cc.o.d"
  "libxqb_xmark.a"
  "libxqb_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqb_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
