file(REMOVE_RECURSE
  "libxqb_xdm.a"
)
