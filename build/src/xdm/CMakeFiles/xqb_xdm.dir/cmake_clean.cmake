file(REMOVE_RECURSE
  "CMakeFiles/xqb_xdm.dir/item.cc.o"
  "CMakeFiles/xqb_xdm.dir/item.cc.o.d"
  "CMakeFiles/xqb_xdm.dir/store.cc.o"
  "CMakeFiles/xqb_xdm.dir/store.cc.o.d"
  "libxqb_xdm.a"
  "libxqb_xdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqb_xdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
