# Empty compiler generated dependencies file for xqb_xdm.
# This may be replaced when dependencies are built.
