file(REMOVE_RECURSE
  "libxqb_xml.a"
)
