
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/serializer.cc" "src/xml/CMakeFiles/xqb_xml.dir/serializer.cc.o" "gcc" "src/xml/CMakeFiles/xqb_xml.dir/serializer.cc.o.d"
  "/root/repo/src/xml/xml_parser.cc" "src/xml/CMakeFiles/xqb_xml.dir/xml_parser.cc.o" "gcc" "src/xml/CMakeFiles/xqb_xml.dir/xml_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xdm/CMakeFiles/xqb_xdm.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/xqb_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
