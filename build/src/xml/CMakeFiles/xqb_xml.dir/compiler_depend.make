# Empty compiler generated dependencies file for xqb_xml.
# This may be replaced when dependencies are built.
