file(REMOVE_RECURSE
  "CMakeFiles/xqb_xml.dir/serializer.cc.o"
  "CMakeFiles/xqb_xml.dir/serializer.cc.o.d"
  "CMakeFiles/xqb_xml.dir/xml_parser.cc.o"
  "CMakeFiles/xqb_xml.dir/xml_parser.cc.o.d"
  "libxqb_xml.a"
  "libxqb_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqb_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
