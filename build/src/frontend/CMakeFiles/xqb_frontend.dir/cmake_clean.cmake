file(REMOVE_RECURSE
  "CMakeFiles/xqb_frontend.dir/ast.cc.o"
  "CMakeFiles/xqb_frontend.dir/ast.cc.o.d"
  "CMakeFiles/xqb_frontend.dir/lexer.cc.o"
  "CMakeFiles/xqb_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/xqb_frontend.dir/parser.cc.o"
  "CMakeFiles/xqb_frontend.dir/parser.cc.o.d"
  "CMakeFiles/xqb_frontend.dir/unparse.cc.o"
  "CMakeFiles/xqb_frontend.dir/unparse.cc.o.d"
  "libxqb_frontend.a"
  "libxqb_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqb_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
