file(REMOVE_RECURSE
  "libxqb_frontend.a"
)
