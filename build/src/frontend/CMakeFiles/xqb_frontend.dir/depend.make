# Empty dependencies file for xqb_frontend.
# This may be replaced when dependencies are built.
