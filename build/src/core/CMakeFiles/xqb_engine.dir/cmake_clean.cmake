file(REMOVE_RECURSE
  "CMakeFiles/xqb_engine.dir/engine.cc.o"
  "CMakeFiles/xqb_engine.dir/engine.cc.o.d"
  "libxqb_engine.a"
  "libxqb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
