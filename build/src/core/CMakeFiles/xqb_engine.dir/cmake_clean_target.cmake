file(REMOVE_RECURSE
  "libxqb_engine.a"
)
