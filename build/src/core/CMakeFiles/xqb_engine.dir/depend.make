# Empty dependencies file for xqb_engine.
# This may be replaced when dependencies are built.
