
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/evaluator.cc" "src/core/CMakeFiles/xqb_core.dir/evaluator.cc.o" "gcc" "src/core/CMakeFiles/xqb_core.dir/evaluator.cc.o.d"
  "/root/repo/src/core/functions.cc" "src/core/CMakeFiles/xqb_core.dir/functions.cc.o" "gcc" "src/core/CMakeFiles/xqb_core.dir/functions.cc.o.d"
  "/root/repo/src/core/id_index.cc" "src/core/CMakeFiles/xqb_core.dir/id_index.cc.o" "gcc" "src/core/CMakeFiles/xqb_core.dir/id_index.cc.o.d"
  "/root/repo/src/core/normalize.cc" "src/core/CMakeFiles/xqb_core.dir/normalize.cc.o" "gcc" "src/core/CMakeFiles/xqb_core.dir/normalize.cc.o.d"
  "/root/repo/src/core/purity.cc" "src/core/CMakeFiles/xqb_core.dir/purity.cc.o" "gcc" "src/core/CMakeFiles/xqb_core.dir/purity.cc.o.d"
  "/root/repo/src/core/static_check.cc" "src/core/CMakeFiles/xqb_core.dir/static_check.cc.o" "gcc" "src/core/CMakeFiles/xqb_core.dir/static_check.cc.o.d"
  "/root/repo/src/core/update.cc" "src/core/CMakeFiles/xqb_core.dir/update.cc.o" "gcc" "src/core/CMakeFiles/xqb_core.dir/update.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/xqb_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/xdm/CMakeFiles/xqb_xdm.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/xqb_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
