file(REMOVE_RECURSE
  "CMakeFiles/xqb_core.dir/evaluator.cc.o"
  "CMakeFiles/xqb_core.dir/evaluator.cc.o.d"
  "CMakeFiles/xqb_core.dir/functions.cc.o"
  "CMakeFiles/xqb_core.dir/functions.cc.o.d"
  "CMakeFiles/xqb_core.dir/id_index.cc.o"
  "CMakeFiles/xqb_core.dir/id_index.cc.o.d"
  "CMakeFiles/xqb_core.dir/normalize.cc.o"
  "CMakeFiles/xqb_core.dir/normalize.cc.o.d"
  "CMakeFiles/xqb_core.dir/purity.cc.o"
  "CMakeFiles/xqb_core.dir/purity.cc.o.d"
  "CMakeFiles/xqb_core.dir/static_check.cc.o"
  "CMakeFiles/xqb_core.dir/static_check.cc.o.d"
  "CMakeFiles/xqb_core.dir/update.cc.o"
  "CMakeFiles/xqb_core.dir/update.cc.o.d"
  "libxqb_core.a"
  "libxqb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
