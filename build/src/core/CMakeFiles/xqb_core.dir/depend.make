# Empty dependencies file for xqb_core.
# This may be replaced when dependencies are built.
