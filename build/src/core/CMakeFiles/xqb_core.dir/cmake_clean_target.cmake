file(REMOVE_RECURSE
  "libxqb_core.a"
)
