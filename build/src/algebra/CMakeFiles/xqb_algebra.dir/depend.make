# Empty dependencies file for xqb_algebra.
# This may be replaced when dependencies are built.
