
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/compile.cc" "src/algebra/CMakeFiles/xqb_algebra.dir/compile.cc.o" "gcc" "src/algebra/CMakeFiles/xqb_algebra.dir/compile.cc.o.d"
  "/root/repo/src/algebra/exec.cc" "src/algebra/CMakeFiles/xqb_algebra.dir/exec.cc.o" "gcc" "src/algebra/CMakeFiles/xqb_algebra.dir/exec.cc.o.d"
  "/root/repo/src/algebra/plan.cc" "src/algebra/CMakeFiles/xqb_algebra.dir/plan.cc.o" "gcc" "src/algebra/CMakeFiles/xqb_algebra.dir/plan.cc.o.d"
  "/root/repo/src/algebra/rewrite.cc" "src/algebra/CMakeFiles/xqb_algebra.dir/rewrite.cc.o" "gcc" "src/algebra/CMakeFiles/xqb_algebra.dir/rewrite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xqb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/xqb_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/xdm/CMakeFiles/xqb_xdm.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/xqb_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
