file(REMOVE_RECURSE
  "CMakeFiles/xqb_algebra.dir/compile.cc.o"
  "CMakeFiles/xqb_algebra.dir/compile.cc.o.d"
  "CMakeFiles/xqb_algebra.dir/exec.cc.o"
  "CMakeFiles/xqb_algebra.dir/exec.cc.o.d"
  "CMakeFiles/xqb_algebra.dir/plan.cc.o"
  "CMakeFiles/xqb_algebra.dir/plan.cc.o.d"
  "CMakeFiles/xqb_algebra.dir/rewrite.cc.o"
  "CMakeFiles/xqb_algebra.dir/rewrite.cc.o.d"
  "libxqb_algebra.a"
  "libxqb_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqb_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
