file(REMOVE_RECURSE
  "libxqb_algebra.a"
)
