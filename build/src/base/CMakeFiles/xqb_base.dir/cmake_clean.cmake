file(REMOVE_RECURSE
  "CMakeFiles/xqb_base.dir/regex.cc.o"
  "CMakeFiles/xqb_base.dir/regex.cc.o.d"
  "CMakeFiles/xqb_base.dir/status.cc.o"
  "CMakeFiles/xqb_base.dir/status.cc.o.d"
  "CMakeFiles/xqb_base.dir/string_util.cc.o"
  "CMakeFiles/xqb_base.dir/string_util.cc.o.d"
  "libxqb_base.a"
  "libxqb_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqb_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
