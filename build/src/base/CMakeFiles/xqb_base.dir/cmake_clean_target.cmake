file(REMOVE_RECURSE
  "libxqb_base.a"
)
