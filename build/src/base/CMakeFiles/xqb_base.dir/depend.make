# Empty dependencies file for xqb_base.
# This may be replaced when dependencies are built.
