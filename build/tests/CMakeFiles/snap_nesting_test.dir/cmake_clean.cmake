file(REMOVE_RECURSE
  "CMakeFiles/snap_nesting_test.dir/core/snap_nesting_test.cc.o"
  "CMakeFiles/snap_nesting_test.dir/core/snap_nesting_test.cc.o.d"
  "snap_nesting_test"
  "snap_nesting_test.pdb"
  "snap_nesting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_nesting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
