# Empty compiler generated dependencies file for snap_nesting_test.
# This may be replaced when dependencies are built.
