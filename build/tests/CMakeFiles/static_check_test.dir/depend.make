# Empty dependencies file for static_check_test.
# This may be replaced when dependencies are built.
