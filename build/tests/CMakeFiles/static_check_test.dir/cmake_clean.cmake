file(REMOVE_RECURSE
  "CMakeFiles/static_check_test.dir/core/static_check_test.cc.o"
  "CMakeFiles/static_check_test.dir/core/static_check_test.cc.o.d"
  "static_check_test"
  "static_check_test.pdb"
  "static_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
