# Empty dependencies file for web_service_test.
# This may be replaced when dependencies are built.
