file(REMOVE_RECURSE
  "CMakeFiles/update_list_test.dir/core/update_list_test.cc.o"
  "CMakeFiles/update_list_test.dir/core/update_list_test.cc.o.d"
  "update_list_test"
  "update_list_test.pdb"
  "update_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
