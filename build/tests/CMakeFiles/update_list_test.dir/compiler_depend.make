# Empty compiler generated dependencies file for update_list_test.
# This may be replaced when dependencies are built.
