file(REMOVE_RECURSE
  "CMakeFiles/semantics_rules_test.dir/core/semantics_rules_test.cc.o"
  "CMakeFiles/semantics_rules_test.dir/core/semantics_rules_test.cc.o.d"
  "semantics_rules_test"
  "semantics_rules_test.pdb"
  "semantics_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantics_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
