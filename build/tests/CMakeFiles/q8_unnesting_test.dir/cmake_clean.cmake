file(REMOVE_RECURSE
  "CMakeFiles/q8_unnesting_test.dir/algebra/q8_unnesting_test.cc.o"
  "CMakeFiles/q8_unnesting_test.dir/algebra/q8_unnesting_test.cc.o.d"
  "q8_unnesting_test"
  "q8_unnesting_test.pdb"
  "q8_unnesting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/q8_unnesting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
