# Empty dependencies file for q8_unnesting_test.
# This may be replaced when dependencies are built.
