# Empty dependencies file for apply_semantics_test.
# This may be replaced when dependencies are built.
