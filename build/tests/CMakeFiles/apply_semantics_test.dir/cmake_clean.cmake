file(REMOVE_RECURSE
  "CMakeFiles/apply_semantics_test.dir/core/apply_semantics_test.cc.o"
  "CMakeFiles/apply_semantics_test.dir/core/apply_semantics_test.cc.o.d"
  "apply_semantics_test"
  "apply_semantics_test.pdb"
  "apply_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apply_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
