file(REMOVE_RECURSE
  "CMakeFiles/purity_test.dir/core/purity_test.cc.o"
  "CMakeFiles/purity_test.dir/core/purity_test.cc.o.d"
  "purity_test"
  "purity_test.pdb"
  "purity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/purity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
