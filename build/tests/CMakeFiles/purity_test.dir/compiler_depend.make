# Empty compiler generated dependencies file for purity_test.
# This may be replaced when dependencies are built.
