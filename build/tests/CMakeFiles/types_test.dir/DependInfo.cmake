
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/types_test.cc" "tests/CMakeFiles/types_test.dir/core/types_test.cc.o" "gcc" "tests/CMakeFiles/types_test.dir/core/types_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xqb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/xqb_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xqb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/xqb_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xqb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xmark/CMakeFiles/xqb_xmark.dir/DependInfo.cmake"
  "/root/repo/build/src/xdm/CMakeFiles/xqb_xdm.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/xqb_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
