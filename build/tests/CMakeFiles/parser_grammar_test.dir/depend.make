# Empty dependencies file for parser_grammar_test.
# This may be replaced when dependencies are built.
