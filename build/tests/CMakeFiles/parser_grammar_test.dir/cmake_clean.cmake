file(REMOVE_RECURSE
  "CMakeFiles/parser_grammar_test.dir/frontend/parser_grammar_test.cc.o"
  "CMakeFiles/parser_grammar_test.dir/frontend/parser_grammar_test.cc.o.d"
  "parser_grammar_test"
  "parser_grammar_test.pdb"
  "parser_grammar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_grammar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
