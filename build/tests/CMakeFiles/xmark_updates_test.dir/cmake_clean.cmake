file(REMOVE_RECURSE
  "CMakeFiles/xmark_updates_test.dir/integration/xmark_updates_test.cc.o"
  "CMakeFiles/xmark_updates_test.dir/integration/xmark_updates_test.cc.o.d"
  "xmark_updates_test"
  "xmark_updates_test.pdb"
  "xmark_updates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_updates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
