# Empty dependencies file for xmark_updates_test.
# This may be replaced when dependencies are built.
