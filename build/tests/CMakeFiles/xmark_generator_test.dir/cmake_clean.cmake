file(REMOVE_RECURSE
  "CMakeFiles/xmark_generator_test.dir/xmark/generator_test.cc.o"
  "CMakeFiles/xmark_generator_test.dir/xmark/generator_test.cc.o.d"
  "xmark_generator_test"
  "xmark_generator_test.pdb"
  "xmark_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
