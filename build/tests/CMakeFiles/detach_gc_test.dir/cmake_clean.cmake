file(REMOVE_RECURSE
  "CMakeFiles/detach_gc_test.dir/xdm/detach_gc_test.cc.o"
  "CMakeFiles/detach_gc_test.dir/xdm/detach_gc_test.cc.o.d"
  "detach_gc_test"
  "detach_gc_test.pdb"
  "detach_gc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detach_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
