file(REMOVE_RECURSE
  "CMakeFiles/xmark_queries_test.dir/integration/xmark_queries_test.cc.o"
  "CMakeFiles/xmark_queries_test.dir/integration/xmark_queries_test.cc.o.d"
  "xmark_queries_test"
  "xmark_queries_test.pdb"
  "xmark_queries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
