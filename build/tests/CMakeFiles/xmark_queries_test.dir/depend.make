# Empty dependencies file for xmark_queries_test.
# This may be replaced when dependencies are built.
