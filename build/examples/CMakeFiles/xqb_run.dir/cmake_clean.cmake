file(REMOVE_RECURSE
  "CMakeFiles/xqb_run.dir/xqb_run.cpp.o"
  "CMakeFiles/xqb_run.dir/xqb_run.cpp.o.d"
  "xqb_run"
  "xqb_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqb_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
