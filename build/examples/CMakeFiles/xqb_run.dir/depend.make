# Empty dependencies file for xqb_run.
# This may be replaced when dependencies are built.
