file(REMOVE_RECURSE
  "CMakeFiles/snap_semantics.dir/snap_semantics.cpp.o"
  "CMakeFiles/snap_semantics.dir/snap_semantics.cpp.o.d"
  "snap_semantics"
  "snap_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
