# Empty compiler generated dependencies file for snap_semantics.
# This may be replaced when dependencies are built.
