# Empty dependencies file for xqb_shell.
# This may be replaced when dependencies are built.
