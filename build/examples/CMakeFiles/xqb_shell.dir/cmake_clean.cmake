file(REMOVE_RECURSE
  "CMakeFiles/xqb_shell.dir/xqb_shell.cpp.o"
  "CMakeFiles/xqb_shell.dir/xqb_shell.cpp.o.d"
  "xqb_shell"
  "xqb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
