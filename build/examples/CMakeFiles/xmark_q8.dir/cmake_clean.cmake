file(REMOVE_RECURSE
  "CMakeFiles/xmark_q8.dir/xmark_q8.cpp.o"
  "CMakeFiles/xmark_q8.dir/xmark_q8.cpp.o.d"
  "xmark_q8"
  "xmark_q8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_q8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
