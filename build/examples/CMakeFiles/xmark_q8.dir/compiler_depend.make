# Empty compiler generated dependencies file for xmark_q8.
# This may be replaced when dependencies are built.
