# Empty dependencies file for bench_updatelist.
# This may be replaced when dependencies are built.
