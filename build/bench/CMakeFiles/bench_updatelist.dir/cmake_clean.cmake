file(REMOVE_RECURSE
  "CMakeFiles/bench_updatelist.dir/bench_updatelist.cc.o"
  "CMakeFiles/bench_updatelist.dir/bench_updatelist.cc.o.d"
  "bench_updatelist"
  "bench_updatelist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_updatelist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
