file(REMOVE_RECURSE
  "CMakeFiles/bench_q8_join.dir/bench_q8_join.cc.o"
  "CMakeFiles/bench_q8_join.dir/bench_q8_join.cc.o.d"
  "bench_q8_join"
  "bench_q8_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q8_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
