# Empty compiler generated dependencies file for bench_q8_join.
# This may be replaced when dependencies are built.
