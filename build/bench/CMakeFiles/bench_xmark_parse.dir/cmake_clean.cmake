file(REMOVE_RECURSE
  "CMakeFiles/bench_xmark_parse.dir/bench_xmark_parse.cc.o"
  "CMakeFiles/bench_xmark_parse.dir/bench_xmark_parse.cc.o.d"
  "bench_xmark_parse"
  "bench_xmark_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xmark_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
