# Empty dependencies file for bench_xmark_parse.
# This may be replaced when dependencies are built.
