# Empty compiler generated dependencies file for bench_snap_modes.
# This may be replaced when dependencies are built.
