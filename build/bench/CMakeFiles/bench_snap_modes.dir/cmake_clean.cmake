file(REMOVE_RECURSE
  "CMakeFiles/bench_snap_modes.dir/bench_snap_modes.cc.o"
  "CMakeFiles/bench_snap_modes.dir/bench_snap_modes.cc.o.d"
  "bench_snap_modes"
  "bench_snap_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snap_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
