# Empty dependencies file for bench_logging.
# This may be replaced when dependencies are built.
