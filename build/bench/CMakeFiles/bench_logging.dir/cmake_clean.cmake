file(REMOVE_RECURSE
  "CMakeFiles/bench_logging.dir/bench_logging.cc.o"
  "CMakeFiles/bench_logging.dir/bench_logging.cc.o.d"
  "bench_logging"
  "bench_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
