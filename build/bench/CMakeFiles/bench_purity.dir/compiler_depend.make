# Empty compiler generated dependencies file for bench_purity.
# This may be replaced when dependencies are built.
