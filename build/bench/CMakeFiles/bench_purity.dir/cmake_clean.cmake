file(REMOVE_RECURSE
  "CMakeFiles/bench_purity.dir/bench_purity.cc.o"
  "CMakeFiles/bench_purity.dir/bench_purity.cc.o.d"
  "bench_purity"
  "bench_purity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_purity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
