file(REMOVE_RECURSE
  "CMakeFiles/bench_update_primitives.dir/bench_update_primitives.cc.o"
  "CMakeFiles/bench_update_primitives.dir/bench_update_primitives.cc.o.d"
  "bench_update_primitives"
  "bench_update_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
