# Empty dependencies file for bench_update_primitives.
# This may be replaced when dependencies are built.
