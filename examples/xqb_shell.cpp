// An interactive XQuery! shell over the engine. Each line (or
// semicolon-free multi-line block ended by an empty line) is executed
// against a persistent store, so snap effects accumulate across inputs.
//
// Commands:
//   :load NAME <xml>     register inline XML as doc('NAME')
//   :xmark NAME FACTOR   register a generated XMark doc as doc('NAME')
//   :plan on|off         toggle the algebraic optimizer (+ plan print)
//   :profile on|off      print per-run statistics after each query
//                        (phase timings, update counts, EXPLAIN ANALYZE)
//   :mode ordered|nondeterministic|conflict-detection
//   :gc                  collect unreachable store nodes
//   :stats               store/node statistics
//   :quit
//
// Build & run:  build/examples/xqb_shell

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "xmark/generator.h"

namespace {

std::string FirstWord(const std::string& s, size_t* rest) {
  size_t start = s.find_first_not_of(" \t");
  if (start == std::string::npos) {
    *rest = s.size();
    return "";
  }
  size_t end = s.find_first_of(" \t", start);
  if (end == std::string::npos) end = s.size();
  *rest = s.find_first_not_of(" \t", end);
  if (*rest == std::string::npos) *rest = s.size();
  return s.substr(start, end - start);
}

}  // namespace

int main() {
  xqb::Engine engine;
  xqb::ExecOptions options;
  std::printf("XQB shell — XQuery! with side effects. :quit to exit.\n");

  std::string line;
  while (std::printf("xqb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line[0] == ':') {
      size_t rest = 0;
      std::string cmd = FirstWord(line, &rest);
      std::string args = line.substr(rest);
      if (cmd == ":quit" || cmd == ":q") break;
      if (cmd == ":load") {
        size_t arg_rest = 0;
        std::string name = FirstWord(args, &arg_rest);
        std::string xml = args.substr(arg_rest);
        auto doc = engine.LoadDocumentFromString(name, xml);
        std::printf(doc.ok() ? "loaded doc('%s')\n" : "error: %s\n",
                    doc.ok() ? name.c_str()
                             : doc.status().ToString().c_str());
        continue;
      }
      if (cmd == ":xmark") {
        size_t arg_rest = 0;
        std::string name = FirstWord(args, &arg_rest);
        double factor = std::strtod(args.c_str() + arg_rest, nullptr);
        xqb::XMarkParams params;
        params.factor = factor > 0 ? factor : 1.0;
        xqb::NodeId doc =
            xqb::GenerateXMarkDocument(&engine.store(), params);
        engine.RegisterDocument(name, doc);
        std::printf("generated doc('%s') at factor %.2f (%zu nodes)\n",
                    name.c_str(), params.factor,
                    engine.store().live_node_count());
        continue;
      }
      if (cmd == ":plan") {
        options.optimize = args.find("on") != std::string::npos;
        std::printf("optimizer %s\n", options.optimize ? "on" : "off");
        continue;
      }
      if (cmd == ":profile") {
        options.collect_stats = args.find("off") == std::string::npos;
        std::printf("profiling %s\n",
                    options.collect_stats ? "on" : "off");
        continue;
      }
      if (cmd == ":mode") {
        if (args.find("nondeterministic") != std::string::npos) {
          options.default_snap_mode = xqb::ApplyMode::kNondeterministic;
        } else if (args.find("conflict") != std::string::npos) {
          options.default_snap_mode = xqb::ApplyMode::kConflictDetection;
        } else {
          options.default_snap_mode = xqb::ApplyMode::kOrdered;
        }
        std::printf("default snap mode: %s\n",
                    ApplyModeToString(options.default_snap_mode));
        continue;
      }
      if (cmd == ":gc") {
        std::printf("freed %zu nodes\n", engine.CollectGarbage());
        continue;
      }
      if (cmd == ":stats") {
        std::printf("live nodes: %zu (slots: %zu)\n",
                    engine.store().live_node_count(),
                    engine.store().slot_count());
        continue;
      }
      std::printf("unknown command %s\n", cmd.c_str());
      continue;
    }

    auto result = engine.Execute(line, options);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", engine.Serialize(*result, /*indent=*/true).c_str());
    if (options.optimize && engine.last_used_algebra()) {
      std::printf("-- plan --\n%s", engine.last_plan().c_str());
    }
    if (options.collect_stats) {
      const xqb::ExecStats& stats = engine.last_stats();
      std::printf("-- profile --\n%s", stats.Summary().c_str());
      if (!stats.plan.empty()) {
        std::printf("-- explain analyze --\n%s\n", stats.plan.c_str());
      }
    }
  }
  return 0;
}
