// The paper's Section 4.3 optimization example: the XMark query 8
// variant that, for each person, counts the auctions where that person
// bought an item — and, as a side effect, records each purchase into a
// $purchasers log. With the insert NOT wrapped in its own snap, the
// optimizer may unnest the join into the paper's
// Snap{MapFromItem{...}(GroupBy(LeftOuterJoin(...)))} plan; with a
// `snap insert`, the rewrite is suppressed and the naive nested-loop
// plan runs.
//
// Build & run:  build/examples/xmark_q8

#include <chrono>
#include <cstdio>

#include "core/engine.h"
#include "xmark/generator.h"

namespace {

constexpr const char* kQ8WithInsert = R"XQ(
for $p in $auction//person
let $a :=
  for $t in $auction//closed_auction
  where $t/buyer/@person = $p/@id
  return (insert { <buyer person="{$t/buyer/@person}"
                          itemid="{$t/itemref/@item}" /> }
          into { $purchasers }, $t)
return <item person="{ $p/name }">{ count($a) }</item>
)XQ";

double RunOnce(xqb::Engine* engine, bool optimize) {
  xqb::ExecOptions options;
  options.optimize = optimize;
  auto start = std::chrono::steady_clock::now();
  auto result = engine->Execute(kQ8WithInsert, options);
  auto stop = std::chrono::steady_clock::now();
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return -1;
  }
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  for (double factor : {0.5, 1.0, 2.0, 4.0}) {
    xqb::Engine engine;
    xqb::XMarkParams params;
    params.factor = factor;
    xqb::NodeId auction = xqb::GenerateXMarkDocument(&engine.store(), params);
    engine.BindVariable("auction", auction);
    auto purchasers = engine.LoadDocumentFromString(
        "purchasers", "<purchasers/>");
    if (!purchasers.ok()) return 1;
    auto root = engine.Execute("doc('purchasers')/purchasers");
    engine.BindVariable("purchasers", (*root)[0].node());

    double naive_ms = RunOnce(&engine, /*optimize=*/false);
    double optimized_ms = RunOnce(&engine, /*optimize=*/true);
    if (naive_ms < 0 || optimized_ms < 0) return 1;

    std::printf(
        "factor %.1f (%d persons x %d closed auctions): "
        "nested-loop %.2f ms, outer-join/group-by %.2f ms (%.1fx)\n",
        factor, params.persons(), params.closed_auctions(), naive_ms,
        optimized_ms, naive_ms / optimized_ms);
    if (factor == 0.5) {
      std::printf("\noptimized plan (compare Section 4.3):\n%s\n",
                  engine.last_plan().c_str());
    }
  }
  return 0;
}
