// Demonstrates the snap operator's semantics (Sections 2.3, 3.2, 3.4):
//   1. the nested-snap ordering example (expected children: b, a, c);
//   2. queries seeing (or not seeing) their own pending effects;
//   3. the three update-application modes, including a conflict that
//      only the conflict-detection mode refuses to apply.
//
// Build & run:  build/examples/snap_semantics

#include <cstdio>

#include "core/engine.h"

namespace {

void Show(const char* label, xqb::Engine* engine, const char* query) {
  auto result = engine->Execute(query);
  if (!result.ok()) {
    std::printf("%-34s => error: %s\n", label,
                result.status().ToString().c_str());
    return;
  }
  std::printf("%-34s => %s\n", label, engine->Serialize(*result).c_str());
}

}  // namespace

int main() {
  {
    std::printf("--- 1. Section 3.4 nested-snap ordering ---\n");
    xqb::Engine engine;
    (void)engine.LoadDocumentFromString("d", "<x/>");
    Show("run nested snaps", &engine,
         "let $x := doc('d')/x return "
         "snap ordered { insert {<a/>} into {$x}, "
         "               snap { insert {<b/>} into {$x} }, "
         "               insert {<c/>} into {$x} }");
    Show("resulting document (expect b,a,c)", &engine, "doc('d')");
  }
  {
    std::printf("\n--- 2. Pending updates are invisible inside a snap ---\n");
    xqb::Engine engine;
    (void)engine.LoadDocumentFromString("d", "<x/>");
    // Without an inner snap, the count does not see the insert.
    Show("count before snap closes", &engine,
         "let $x := doc('d')/x return "
         "( insert {<y/>} into {$x}, count($x/y) )");
    Show("count in a later query", &engine,
         "count(doc('d')/x/y)");
    // With snap, the effect is visible immediately after the scope ends.
    Show("count after explicit snap", &engine,
         "let $x := doc('d')/x return "
         "( snap insert {<y/>} into {$x}, count($x/y) )");
  }
  {
    std::printf("\n--- 3. Application modes on a conflicting delta ---\n");
    // Two inserts race for the "as last" slot of the same element: the
    // ordered mode applies them in program order, the nondeterministic
    // mode in a seed-dependent order, and conflict detection refuses.
    const char* conflicting =
        "let $x := doc('d')/x return "
        "snap %s { insert {<first/>} into {$x}, "
        "          insert {<second/>} into {$x} }";
    for (const char* mode : {"ordered", "nondeterministic",
                             "conflict-detection"}) {
      xqb::Engine engine;
      (void)engine.LoadDocumentFromString("d", "<x/>");
      char query[512];
      std::snprintf(query, sizeof(query), conflicting, mode);
      Show(mode, &engine, query);
      Show("  document afterwards", &engine, "doc('d')");
    }
  }
  return 0;
}
