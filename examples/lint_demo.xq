(: Run: xqb_run --lint examples/lint_demo.xq
   Each effect-analysis lint rule (docs/ANALYSIS.md section 4) fires once. :)
declare variable $unused := 1;
(
  snap { count(doc("inventory")/items/item) },
  insert { <sold id="i1"/> } into { doc("inventory")/items },
  snap { (rename { doc("audit")/trail } to { "log" },
          delete { doc("audit")/trail }) },
  (snap { delete { doc("log")/entries/old } },
   count(doc("log")/entries/*))
)
