// The paper's Section 2 use case: an auction Web service whose get_item
// function logs every access (updates inside functions), rotates the log
// into an archive every $maxlog entries (controlling update application
// with snap), and stamps each log entry with a fresh id from a
// snap-based counter (nested snap, Section 2.5).
//
// Build & run:  build/examples/web_service

#include <cstdio>

#include "core/engine.h"
#include "xmark/generator.h"

namespace {

constexpr const char* kServiceModule = R"XQ(
declare variable $maxlog := 4;

(::: The Section 2.5 counter: a nested snap makes nextid() return a
     fresh value on every call, even inside an outer snap. :::)
declare variable $d := element counter { 0 };
declare function nextid() {
  snap { replace { $d/text() } with { $d + 1 }, string($d + 1) }
};

(::: Log archival: summarize the log, then clear it. :::)
declare function archivelog() {
  snap insert { <archived entries="{count(doc('log')/log/logentry)}"/> }
       into { doc('archive')/archive }
};

(::: The Section 2.2/2.3 service function: returns the item AND logs
     the access, seeing its own effects through snap. :::)
declare function get_item($itemid, $userid) {
  let $item := doc('auction')//item[@id = $itemid]
  return (
    (::: Logging code :::)
    let $name := doc('auction')//person[@id = $userid]/name
    return (
      snap insert { <logentry id="{nextid()}"
                              user="{$name}"
                              itemid="{$itemid}"/> }
           into { doc('log')/log },
      if (count(doc('log')/log/logentry) >= $maxlog)
      then (archivelog(), snap delete { doc('log')/log/logentry })
      else ()
    ),
    (::: End logging code :::)
    $item
  )
};

for $i in 0 to 9
return <served user="person{$i}">{
  get_item(concat("item", $i), concat("person", $i))/name/text()
}</served>
)XQ";

}  // namespace

int main() {
  xqb::Engine engine;

  // Server state: the XMark auction document plus log and archive docs.
  xqb::XMarkParams params;
  params.factor = 0.2;
  xqb::NodeId auction =
      xqb::GenerateXMarkDocument(&engine.store(), params);
  engine.RegisterDocument("auction", auction);
  if (!engine.LoadDocumentFromString("log", "<log/>").ok() ||
      !engine.LoadDocumentFromString("archive", "<archive/>").ok()) {
    std::fprintf(stderr, "failed to initialize service state\n");
    return 1;
  }

  auto served = engine.Execute(kServiceModule);
  if (!served.ok()) {
    std::fprintf(stderr, "service run failed: %s\n",
                 served.status().ToString().c_str());
    return 1;
  }
  std::printf("responses:\n%s\n\n",
              engine.Serialize(*served, /*indent=*/true).c_str());

  auto log = engine.Execute("doc('log')");
  std::printf("log (entries since last rotation):\n%s\n\n",
              engine.Serialize(*log, /*indent=*/true).c_str());

  auto archive = engine.Execute("doc('archive')");
  std::printf("archive (one element per rotation of %s entries):\n%s\n",
              "4", engine.Serialize(*archive, /*indent=*/true).c_str());
  return 0;
}
