// Quickstart: load a document, run an XQuery! program that both queries
// and updates it, and observe the store before and after.
//
// Build & run:  build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/engine.h"

int main() {
  xqb::Engine engine;

  // 1. Load a document. It becomes visible to queries as doc('books').
  auto doc = engine.LoadDocumentFromString("books", R"(
    <library>
      <book year="2004"><title>XQuery from the Experts</title></book>
      <book year="1997"><title>The Definition of Standard ML</title></book>
      <book year="2002"><title>XMark: A Benchmark</title></book>
    </library>)");
  if (!doc.ok()) {
    std::fprintf(stderr, "load failed: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  // 2. A read-only query: titles of books after 2000, oldest first.
  auto titles = engine.Execute(
      "for $b in doc('books')/library/book "
      "where $b/@year >= 2000 "
      "order by $b/@year "
      "return $b/title");
  if (!titles.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 titles.status().ToString().c_str());
    return 1;
  }
  std::printf("recent titles:\n%s\n\n",
              engine.Serialize(*titles, /*indent=*/true).c_str());

  // 3. A side-effecting program (the XQuery! extension): tag every
  //    pre-2000 book as a classic AND return how many were tagged —
  //    an expression that updates and returns a value at once.
  auto tagged = engine.Execute(
      "let $old := doc('books')/library/book[@year < 2000] "
      "return ( "
      "  for $b in $old return insert { <classic/> } into { $b }, "
      "  count($old) "
      ")");
  if (!tagged.ok()) {
    std::fprintf(stderr, "update failed: %s\n",
                 tagged.status().ToString().c_str());
    return 1;
  }
  std::printf("tagged %s book(s) as classics\n\n",
              engine.Serialize(*tagged).c_str());

  // 4. The updates were applied when the implicit top-level snap closed.
  auto after = engine.Execute("doc('books')");
  std::printf("library after update:\n%s\n",
              engine.Serialize(*after, /*indent=*/true).c_str());
  return 0;
}
