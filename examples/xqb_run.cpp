// Batch runner: execute an XQuery! file against XML documents.
//
//   xqb_run [options] query.xq
//     --doc NAME=FILE     register FILE as doc('NAME') (repeatable;
//                         skipped if recovery already restored NAME)
//     --var NAME=VALUE    bind $NAME to a string value (repeatable)
//     --lint[=json]       do not execute: run the static checks and the
//                         effect-analysis lint rules (XQL001..XQL005,
//                         docs/ANALYSIS.md) over the query and print
//                         the diagnostics, one per line (or as a stable
//                         JSON object with =json). Exits 0 when no
//                         error-severity diagnostic was found (warnings
//                         are advisory), 2 otherwise
//     --lint-disable CODES
//                         comma-separated rule codes to suppress in
//                         --lint mode (e.g. XQL003,XQL005)
//     --optimize          run through the algebraic optimizer
//     --plan              print the optimized plan (implies --optimize)
//     --mode MODE         default snap mode: ordered (default),
//                         nondeterministic, conflict-detection
//     --seed N            seed for the nondeterministic mode
//     --indent            pretty-print the result
//     --save NAME=FILE    after the query, serialize doc('NAME') to FILE
//     --xmark NAME=FACTOR register a generated XMark auction document of
//                         the given scale factor as doc('NAME')
//     --profile           print run statistics (phase timings, update
//                         counts, EXPLAIN ANALYZE plan) to stderr
//     --trace FILE        write a Chrome trace_event JSON span trace of
//                         the run to FILE (chrome://tracing / Perfetto);
//                         --trace=FILE also accepted
//     --threads N         worker threads for parallel snap evaluation
//     --failpoints SPEC   arm fault-injection points for this run, e.g.
//                         "snap.apply=nth:1,store.alloc=prob:0.01:7"
//                         (see docs/ROBUSTNESS.md for the grammar)
//     --list-failpoints   print the fail-point catalog and exit
//     --crash-on-failpoints
//                         armed fail points SIGKILL the process at the
//                         fired site instead of returning an error
//                         (crash-torture mode; simulates power loss)
//     --data-dir DIR      open the durable store at DIR before loading
//                         documents: recover from checkpoint + WAL,
//                         then log every load, applied Δ and GC
//     --sync MODE         WAL sync mode for --data-dir: always
//                         (default), batch, off
//     --recover           print recovery statistics to stderr; the
//                         query becomes optional (recover-only runs)
//     --checkpoint        write a checkpoint (and truncate the WAL)
//                         after the query; query optional
//     --check-integrity   audit store integrity after everything else;
//                         a violated invariant exits 10
//     --serve-batch FILE  query-service mode (docs/SERVICE.md): replay
//                         the workload FILE (one request per line,
//                         optional @prio=P / @deadline=MS prefixes, #
//                         comments) from --clients concurrent threads
//                         through the shared plan cache and admission
//                         scheduler; prints per-request latency
//                         percentiles (from the telemetry histogram,
//                         so the report and the exported metrics agree
//                         by construction) and the cache hit rate. The
//                         positional query file is not used
//     --clients N         client threads for --serve-batch (default 4)
//     --repeat N          workload replays per client (default 1)
//     --metrics-out FILE  write the Prometheus text exposition of the
//                         metric registry to FILE at end of run
//                         (docs/OBSERVABILITY.md §6)
//     --metrics-json FILE write the JSON metrics snapshot to FILE
//     --metrics-port N    serve /metrics (and /metrics.json) on
//                         127.0.0.1:N for the duration of
//                         --serve-batch (0 picks a free port, printed
//                         to stderr)
//     --slow-log FILE     append a JSON line per request slower than
//                         --slow-threshold-ms to FILE
//     --slow-threshold-ms N
//                         slow-query threshold (default 100)
//     --slow-sample N     of the over-threshold requests, log every
//                         Nth (default 1 = all)
//     --flight-dump PATH  arm the flight recorder: on kOverloaded
//                         shedding, durability fail-stop, or an
//                         integrity-check failure, dump the last-256
//                         request summaries to PATH as JSON lines
//
// Exit status (documented contract — scripts and the chaos harness key
// off these; see docs/ROBUSTNESS.md):
//   0  success (in --lint mode: no error-severity diagnostic)
//   1  usage error, unreadable query/document file, unwritable output
//   2  parse or static error in the query or an XML document (in
//      --lint mode: at least one error-severity diagnostic)
//   3  dynamic or type error raised during evaluation
//   4  update error (Section 3.2 precondition failure)
//   5  conflict-detection mode rejected the update list
//   6  a resource budget tripped (ExecLimits governor)
//   7  the run was cancelled
//   8  an armed fail point fired (fault injection)
//   9  internal error / invalid API use — indicates an engine bug
//  10  durable-store damage: recovery found unrecoverable corruption,
//      or --check-integrity found a violated store invariant
//  11  the query service shed every request (kOverloaded) — in
//      --serve-batch, no request at all completed

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/failpoint.h"
#include "core/engine.h"
#include "service/service.h"
#include "telemetry/exposition.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/http_exporter.h"
#include "telemetry/metrics.h"
#include "telemetry/slow_query_log.h"
#include "xmark/generator.h"

namespace {

/// Maps a Status class onto the documented exit-code contract above.
int ExitCodeFor(const xqb::Status& status) {
  switch (status.code()) {
    case xqb::StatusCode::kOk:
      return 0;
    case xqb::StatusCode::kParseError:
    case xqb::StatusCode::kStaticError:
      return 2;
    case xqb::StatusCode::kDynamicError:
    case xqb::StatusCode::kTypeError:
      return 3;
    case xqb::StatusCode::kUpdateError:
      return 4;
    case xqb::StatusCode::kConflictError:
      return 5;
    case xqb::StatusCode::kResourceExhausted:
      return 6;
    case xqb::StatusCode::kCancelled:
      return 7;
    case xqb::StatusCode::kFaultInjected:
      return 8;
    case xqb::StatusCode::kInvalidArgument:
    case xqb::StatusCode::kInternal:
      return 9;
    case xqb::StatusCode::kDataLoss:
      return 10;
    case xqb::StatusCode::kOverloaded:
      return 11;
  }
  return 9;
}

bool SplitKeyValue(const std::string& arg, std::string* key,
                   std::string* value) {
  size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *key = arg.substr(0, eq);
  *value = arg.substr(eq + 1);
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: xqb_run [--doc NAME=FILE]... [--var NAME=VALUE]...\n"
      "               [--lint[=json]] [--lint-disable CODES]\n"
      "               [--xmark NAME=FACTOR]... [--optimize] [--plan]\n"
      "               [--mode MODE] [--seed N] [--threads N] [--indent]\n"
      "               [--profile] [--trace FILE] [--save NAME=FILE]...\n"
      "               [--failpoints SPEC] [--list-failpoints]\n"
      "               [--crash-on-failpoints] [--data-dir DIR]\n"
      "               [--sync always|batch|off] [--recover]\n"
      "               [--checkpoint] [--check-integrity]\n"
      "               [--serve-batch FILE] [--clients N] [--repeat N]\n"
      "               [--metrics-out FILE] [--metrics-json FILE]\n"
      "               [--metrics-port N] [--slow-log FILE]\n"
      "               [--slow-threshold-ms N] [--slow-sample N]\n"
      "               [--flight-dump PATH]\n"
      "               [query.xq]\n");
  return 1;
}

/// A deferred document source: loads run only after durability is open,
/// so recovery precedes (and can satisfy) them.
struct LoadAction {
  enum class Kind { kDoc, kXMark } kind;
  std::string name;
  std::string path;    // kDoc
  double factor = 0;   // kXMark
};

// ---- --serve-batch: the query-service workload driver ----

/// One parsed workload line (docs/SERVICE.md §5): optional
/// whitespace-separated `@prio=P` / `@deadline=MS` prefixes, then the
/// query text. Lines that are empty or start with `#` are skipped.
struct WorkloadRequest {
  std::string query;
  int priority = 0;
  int64_t deadline_ms = 0;
};

bool ParseWorkloadLine(const std::string& line, WorkloadRequest* out,
                       std::string* error) {
  size_t pos = line.find_first_not_of(" \t");
  if (pos == std::string::npos || line[pos] == '#') return false;
  while (pos < line.size() && line[pos] == '@') {
    size_t end = line.find_first_of(" \t", pos);
    if (end == std::string::npos) end = line.size();
    const std::string directive = line.substr(pos, end - pos);
    if (directive.rfind("@prio=", 0) == 0) {
      out->priority = static_cast<int>(
          std::strtol(directive.c_str() + 6, nullptr, 10));
    } else if (directive.rfind("@deadline=", 0) == 0) {
      out->deadline_ms = std::strtoll(directive.c_str() + 10, nullptr, 10);
    } else {
      *error = "unknown workload directive " + directive;
      return false;
    }
    pos = line.find_first_not_of(" \t", end);
    if (pos == std::string::npos) {
      *error = "workload line has directives but no query";
      return false;
    }
  }
  out->query = line.substr(pos);
  return true;
}

/// Telemetry export destinations (--metrics-out / --metrics-json /
/// --metrics-port).
struct MetricsFlags {
  std::string text_path;
  std::string json_path;
  int port = -1;  ///< < 0: no scrape endpoint.
};

/// Writes the requested exposition files; failures go to stderr but do
/// not change the exit code (the run's own result outranks a metrics
/// write).
void WriteMetricsFiles(const MetricsFlags& metrics) {
  if (!metrics.text_path.empty()) {
    xqb::Status written = xqb::WriteMetricsFile(
        metrics.text_path,
        xqb::RenderPrometheusText(xqb::MetricRegistry::Default()));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
    }
  }
  if (!metrics.json_path.empty()) {
    xqb::Status written = xqb::WriteMetricsFile(
        metrics.json_path,
        xqb::RenderMetricsJson(xqb::MetricRegistry::Default()));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
    }
  }
}

/// Replays the workload from `clients` threads through one
/// QueryService. Returns the process exit code (contract above).
int ServeBatch(xqb::Engine* engine, const xqb::ExecOptions& exec,
               const std::string& workload_path, int clients, int repeat,
               const MetricsFlags& metrics) {
  std::ifstream in(workload_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open workload file %s\n",
                 workload_path.c_str());
    return 1;
  }
  std::vector<WorkloadRequest> workload;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    WorkloadRequest request;
    std::string error;
    if (ParseWorkloadLine(line, &request, &error)) {
      workload.push_back(std::move(request));
    } else if (!error.empty()) {
      std::fprintf(stderr, "%s:%d: %s\n", workload_path.c_str(), lineno,
                   error.c_str());
      return 1;
    }
  }
  if (workload.empty()) {
    std::fprintf(stderr, "%s: no requests\n", workload_path.c_str());
    return 1;
  }

  xqb::QueryServiceOptions service_options;
  service_options.exec = exec;
  service_options.scheduler.max_concurrent = std::max(1, clients);
  service_options.scheduler.queue_capacity =
      std::max(64, clients * static_cast<int>(workload.size()));
  xqb::QueryService service(engine, service_options);

  // Scrape endpoint for the duration of the batch (--metrics-port).
  xqb::MetricsHttpServer metrics_server;
  if (metrics.port >= 0) {
    xqb::Status started =
        metrics_server.Start(metrics.port, &xqb::MetricRegistry::Default());
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics: serving on 127.0.0.1:%d\n",
                 metrics_server.port());
  }

  // Failure exits dump the flight recorder (a no-op unless
  // --flight-dump armed it) and every exit writes the requested
  // metrics files. The dump path is not printed: the chaos/torture
  // harnesses key on byte-identical stderr across runs and already
  // know the path they armed.
  auto finish = [&](int code, const char* flight_reason) {
    if (code != 0 && flight_reason != nullptr) {
      xqb::FlightRecorder::Default().Dump(flight_reason);
    }
    metrics_server.Stop();
    WriteMetricsFiles(metrics);
    return code;
  };

  struct ClientResult {
    int64_t queue_wait_ns = 0;
    xqb::Status first_error;  // First non-ok, non-shed status seen.
  };
  std::vector<ClientResult> results(static_cast<size_t>(clients));

  const int64_t t0 = xqb::MonotonicNowNs();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientResult& mine = results[static_cast<size_t>(c)];
      for (int r = 0; r < repeat; ++r) {
        for (const WorkloadRequest& w : workload) {
          xqb::QueryService::Request request;
          request.query = w.query;
          request.priority = w.priority;
          request.deadline_ms = w.deadline_ms;
          xqb::QueryService::Response response = service.Submit(request);
          mine.queue_wait_ns += response.stats.queue_wait_ns;
          if (!response.status.ok() &&
              response.status.code() != xqb::StatusCode::kOverloaded &&
              mine.first_error.ok()) {
            mine.first_error = response.status;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      static_cast<double>(xqb::MonotonicNowNs() - t0) / 1e9;

  int64_t queue_wait_ns = 0;
  xqb::Status first_error;
  for (const ClientResult& r : results) {
    queue_wait_ns += r.queue_wait_ns;
    if (first_error.ok()) first_error = r.first_error;
  }

  // Latency percentiles come from the same telemetry histogram the
  // exporters render (read + write series merged), so this report and
  // a scrape can never disagree about the latency distribution.
  xqb::MetricRegistry& registry = xqb::MetricRegistry::Default();
  xqb::HistogramSnapshot latency =
      registry
          .GetHistogram("xqb_request_duration_seconds", "",
                        {{"kind", "read"}}, xqb::TimeHistogramOptions())
          ->Snapshot();
  latency.MergeFrom(
      registry
          .GetHistogram("xqb_request_duration_seconds", "",
                        {{"kind", "write"}}, xqb::TimeHistogramOptions())
          ->Snapshot());

  const xqb::QueryService::Counters counters = service.counters();
  const int64_t expected = static_cast<int64_t>(workload.size()) *
                           clients * repeat;
  const int64_t lookups = counters.cache.hits + counters.cache.misses;
  const double hit_rate =
      lookups > 0 ? 100.0 * static_cast<double>(counters.cache.hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  auto ms = [](int64_t ns) { return static_cast<double>(ns) / 1e6; };
  std::printf(
      "-- serve-batch --\n"
      "workload: %zu requests x %d clients x %d repeats\n"
      "requests: submitted=%lld completed=%lld failed=%lld shed=%lld "
      "cancelled=%lld\n"
      "throughput: %.1f req/s over %.3f s\n"
      "latency (ms): p50=%.3f p90=%.3f p99=%.3f max=%.3f\n"
      "queue-wait (ms): mean=%.3f\n"
      "cache: hits=%lld misses=%lld evictions=%lld hit-rate=%.1f%%\n"
      "scheduler: exclusive-runs=%lld shed-queue-full=%lld "
      "shed-deadline=%lld\n",
      workload.size(), clients, repeat,
      static_cast<long long>(counters.submitted),
      static_cast<long long>(counters.completed),
      static_cast<long long>(counters.failed),
      static_cast<long long>(counters.shed),
      static_cast<long long>(counters.cancelled), //
      counters.submitted > 0 ? counters.submitted / wall_s : 0.0, wall_s,
      latency.PercentileRaw(50) / 1e6, latency.PercentileRaw(90) / 1e6,
      latency.PercentileRaw(99) / 1e6,
      static_cast<double>(latency.max) / 1e6,
      counters.submitted > 0
          ? ms(queue_wait_ns) / static_cast<double>(counters.submitted)
          : 0.0,
      static_cast<long long>(counters.cache.hits),
      static_cast<long long>(counters.cache.misses),
      static_cast<long long>(counters.cache.evictions), hit_rate,
      static_cast<long long>(counters.scheduler.exclusive_runs),
      static_cast<long long>(counters.scheduler.shed_queue_full),
      static_cast<long long>(counters.scheduler.shed_deadline));

  // Accounting cross-check: every submitted request must land in
  // exactly one outcome bucket. A mismatch means the service lost or
  // double-counted a request — an engine bug, exit 9.
  if (counters.submitted != expected ||
      counters.submitted != counters.completed + counters.failed +
                                counters.shed + counters.cancelled) {
    std::fprintf(stderr,
                 "serve-batch: request accounting mismatch "
                 "(submitted=%lld expected=%lld buckets=%lld)\n",
                 static_cast<long long>(counters.submitted),
                 static_cast<long long>(expected),
                 static_cast<long long>(counters.completed +
                                        counters.failed + counters.shed +
                                        counters.cancelled));
    return finish(9, "accounting_mismatch");
  }
  if (!first_error.ok()) {
    std::fprintf(stderr, "serve-batch: %s\n",
                 first_error.ToString().c_str());
    return finish(ExitCodeFor(first_error), "request_error");
  }
  if (counters.completed == 0) {
    // Everything was shed: the service never did any work.
    std::fprintf(stderr, "serve-batch: all requests shed\n");
    return finish(11, "all_requests_shed");
  }
  return finish(0, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  xqb::Engine engine;
  xqb::ExecOptions options;
  bool indent = false;
  bool lint = false;
  bool lint_json = false;
  xqb::LintOptions lint_options;
  bool print_plan = false;
  bool profile = false;
  bool recover = false;
  bool do_checkpoint = false;
  bool check_integrity = false;
  bool crash_on_failpoints = false;
  std::string data_dir;
  std::string sync_mode = "always";
  std::string query_path;
  std::string serve_batch_path;
  int clients = 4;
  int repeat = 1;
  MetricsFlags metrics;
  std::string slow_log_path;
  int64_t slow_threshold_ms = 100;
  int64_t slow_sample = 1;
  std::string flight_dump_path;
  std::vector<LoadAction> loads;
  std::vector<std::pair<std::string, std::string>> vars;
  std::vector<std::pair<std::string, std::string>> saves;

  // Pass 1: parse everything, deferring document loads — durability
  // must open (and recover) before the first document materializes.
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--doc") {
      const char* value = next_value("--doc");
      if (!value) return Usage();
      LoadAction load;
      load.kind = LoadAction::Kind::kDoc;
      if (!SplitKeyValue(value, &load.name, &load.path)) return Usage();
      loads.push_back(std::move(load));
    } else if (arg == "--var") {
      const char* value = next_value("--var");
      if (!value) return Usage();
      std::string name, str;
      if (!SplitKeyValue(value, &name, &str)) return Usage();
      vars.emplace_back(name, str);
    } else if (arg == "--save") {
      const char* value = next_value("--save");
      if (!value) return Usage();
      std::string name, path;
      if (!SplitKeyValue(value, &name, &path)) return Usage();
      saves.emplace_back(name, path);
    } else if (arg == "--xmark") {
      const char* value = next_value("--xmark");
      if (!value) return Usage();
      LoadAction load;
      load.kind = LoadAction::Kind::kXMark;
      std::string factor;
      if (!SplitKeyValue(value, &load.name, &factor)) return Usage();
      load.factor = std::strtod(factor.c_str(), nullptr);
      if (load.factor <= 0) {
        std::fprintf(stderr, "--xmark factor must be > 0\n");
        return Usage();
      }
      loads.push_back(std::move(load));
    } else if (arg == "--profile") {
      profile = true;
      options.collect_stats = true;
    } else if (arg == "--trace" ||
               arg.rfind("--trace=", 0) == 0) {
      if (arg == "--trace") {
        const char* value = next_value("--trace");
        if (!value) return Usage();
        options.trace_path = value;
      } else {
        options.trace_path = arg.substr(std::strlen("--trace="));
      }
      if (options.trace_path.empty()) return Usage();
    } else if (arg == "--threads") {
      const char* value = next_value("--threads");
      if (!value) return Usage();
      options.threads = static_cast<int>(std::strtol(value, nullptr, 10));
    } else if (arg == "--failpoints") {
      const char* value = next_value("--failpoints");
      if (!value) return Usage();
      options.failpoints = value;
    } else if (arg == "--list-failpoints") {
      for (const xqb::FailpointInfo& info : xqb::FailpointCatalog()) {
        std::printf("%-28s %s %s\n", info.name,
                    info.preserves_documents ? "[preserves-documents]"
                                             : "[partial-delta-ok]   ",
                    info.description);
      }
      if (!xqb::FailpointRegistry::kCompiledIn) {
        std::printf("(fail points are compiled out in this build; "
                    "rebuild with -DXQB_FAILPOINTS=ON to arm them)\n");
      }
      return 0;
    } else if (arg == "--crash-on-failpoints") {
      crash_on_failpoints = true;
    } else if (arg == "--data-dir") {
      const char* value = next_value("--data-dir");
      if (!value) return Usage();
      data_dir = value;
      if (data_dir.empty()) return Usage();
    } else if (arg == "--sync") {
      const char* value = next_value("--sync");
      if (!value) return Usage();
      sync_mode = value;
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg == "--checkpoint") {
      do_checkpoint = true;
    } else if (arg == "--check-integrity") {
      check_integrity = true;
    } else if (arg == "--serve-batch") {
      const char* value = next_value("--serve-batch");
      if (!value) return Usage();
      serve_batch_path = value;
      if (serve_batch_path.empty()) return Usage();
    } else if (arg == "--metrics-out") {
      const char* value = next_value("--metrics-out");
      if (!value || *value == '\0') return Usage();
      metrics.text_path = value;
    } else if (arg == "--metrics-json") {
      const char* value = next_value("--metrics-json");
      if (!value || *value == '\0') return Usage();
      metrics.json_path = value;
    } else if (arg == "--metrics-port") {
      const char* value = next_value("--metrics-port");
      if (!value) return Usage();
      metrics.port = static_cast<int>(std::strtol(value, nullptr, 10));
      if (metrics.port < 0 || metrics.port > 65535) {
        std::fprintf(stderr, "--metrics-port must be 0..65535\n");
        return Usage();
      }
    } else if (arg == "--slow-log") {
      const char* value = next_value("--slow-log");
      if (!value || *value == '\0') return Usage();
      slow_log_path = value;
    } else if (arg == "--slow-threshold-ms") {
      const char* value = next_value("--slow-threshold-ms");
      if (!value) return Usage();
      slow_threshold_ms = std::strtoll(value, nullptr, 10);
      if (slow_threshold_ms < 0) return Usage();
    } else if (arg == "--slow-sample") {
      const char* value = next_value("--slow-sample");
      if (!value) return Usage();
      slow_sample = std::strtoll(value, nullptr, 10);
      if (slow_sample < 1) return Usage();
    } else if (arg == "--flight-dump") {
      const char* value = next_value("--flight-dump");
      if (!value || *value == '\0') return Usage();
      flight_dump_path = value;
    } else if (arg == "--clients") {
      const char* value = next_value("--clients");
      if (!value) return Usage();
      clients = static_cast<int>(std::strtol(value, nullptr, 10));
      if (clients < 1) {
        std::fprintf(stderr, "--clients must be >= 1\n");
        return Usage();
      }
    } else if (arg == "--repeat") {
      const char* value = next_value("--repeat");
      if (!value) return Usage();
      repeat = static_cast<int>(std::strtol(value, nullptr, 10));
      if (repeat < 1) {
        std::fprintf(stderr, "--repeat must be >= 1\n");
        return Usage();
      }
    } else if (arg == "--lint" || arg == "--lint=text") {
      lint = true;
    } else if (arg == "--lint=json") {
      lint = true;
      lint_json = true;
    } else if (arg == "--lint-disable" ||
               arg.rfind("--lint-disable=", 0) == 0) {
      std::string codes;
      if (arg == "--lint-disable") {
        const char* value = next_value("--lint-disable");
        if (!value || *value == '\0') return Usage();
        codes = value;
      } else {
        codes = arg.substr(std::strlen("--lint-disable="));
        if (codes.empty()) return Usage();
      }
      std::istringstream list(codes);
      std::string code;
      while (std::getline(list, code, ',')) {
        if (!code.empty()) lint_options.disabled.insert(code);
      }
    } else if (arg == "--optimize") {
      options.optimize = true;
    } else if (arg == "--plan") {
      options.optimize = true;
      print_plan = true;
    } else if (arg == "--indent") {
      indent = true;
    } else if (arg == "--mode") {
      const char* value = next_value("--mode");
      if (!value) return Usage();
      if (std::strcmp(value, "ordered") == 0) {
        options.default_snap_mode = xqb::ApplyMode::kOrdered;
      } else if (std::strcmp(value, "nondeterministic") == 0) {
        options.default_snap_mode = xqb::ApplyMode::kNondeterministic;
      } else if (std::strcmp(value, "conflict-detection") == 0) {
        options.default_snap_mode = xqb::ApplyMode::kConflictDetection;
      } else {
        std::fprintf(stderr, "unknown mode %s\n", value);
        return Usage();
      }
    } else if (arg == "--seed") {
      const char* value = next_value("--seed");
      if (!value) return Usage();
      options.nondet_seed = std::strtoull(value, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return Usage();
    } else if (query_path.empty()) {
      query_path = arg;
    } else {
      return Usage();
    }
  }
  // Maintenance-only and serve-batch invocations need no query.
  const bool maintenance = recover || do_checkpoint || check_integrity;
  if (query_path.empty() && serve_batch_path.empty() && !maintenance) {
    return Usage();
  }
  if ((recover || do_checkpoint) && data_dir.empty()) {
    std::fprintf(stderr, "--recover/--checkpoint require --data-dir\n");
    return Usage();
  }

  // Telemetry sinks are configured before durability opens so that the
  // flight recorder is armed for recovery-time fail-stops too.
  if (!flight_dump_path.empty()) {
    xqb::FlightRecorder::Default().SetDumpPath(flight_dump_path);
  }
  if (!slow_log_path.empty()) {
    xqb::SlowQueryLog::Options slow;
    slow.path = slow_log_path;
    slow.threshold_ns = slow_threshold_ms * 1'000'000;
    slow.sample_every = slow_sample;
    xqb::Status configured = xqb::SlowQueryLog::Default().Configure(slow);
    if (!configured.ok()) {
      std::fprintf(stderr, "%s\n", configured.ToString().c_str());
      return 1;
    }
  }

  if (crash_on_failpoints) {
    xqb::FailpointRegistry::Global().set_crash_on_fire(true);
  }
  // Arm fail points here rather than at Run entry: recovery-on-open and
  // document loads happen below, before any Run, and their sites
  // (recovery.replay, wal.*, checkpoint.*) must see the configuration.
  if (!options.failpoints.empty()) {
    if (!xqb::FailpointRegistry::kCompiledIn) {
      std::fprintf(stderr,
                   "--failpoints set but fail points are compiled out "
                   "(build with -DXQB_FAILPOINTS=ON)\n");
      return 9;
    }
    xqb::Status armed =
        xqb::FailpointRegistry::Global().Configure(options.failpoints);
    if (!armed.ok()) {
      std::fprintf(stderr, "%s\n", armed.ToString().c_str());
      return 9;
    }
    // Already armed; an Execute re-arm would reset the hit counters.
    options.failpoints.clear();
  }

  // Pass 2: open durability (recovery runs here), then load documents.
  if (!data_dir.empty()) {
    auto mode = xqb::ParseSyncMode(sync_mode);
    if (!mode.ok()) {
      std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
      return Usage();
    }
    xqb::RecoveryStats stats;
    xqb::Status opened = engine.OpenDurability(data_dir, *mode, &stats);
    if (!opened.ok()) {
      std::fprintf(stderr, "opening durable store %s: %s\n",
                   data_dir.c_str(), opened.ToString().c_str());
      xqb::FlightRecorder::Default().Dump("durability_error");
      return ExitCodeFor(opened);
    }
    if (recover) {
      std::fprintf(
          stderr,
          "-- recovery --\n"
          "checkpoint: %s (seq %llu, %zu rejected)\n"
          "wal: %llu records replayed, %llu skipped\n"
          "torn tail: %s (%llu bytes discarded)\n"
          "documents: %zu, live nodes: %zu\n",
          stats.had_checkpoint ? stats.checkpoint_path.c_str() : "none",
          static_cast<unsigned long long>(stats.checkpoint_seq),
          stats.checkpoints_rejected,
          static_cast<unsigned long long>(stats.wal_records_replayed),
          static_cast<unsigned long long>(stats.wal_records_skipped),
          stats.torn_tail ? stats.torn_tail_error.c_str() : "none",
          static_cast<unsigned long long>(stats.torn_bytes_discarded),
          engine.document_count(),
          engine.store().live_node_count());
    }
  }
  for (const LoadAction& load : loads) {
    if (engine.durability_open() && engine.HasDocument(load.name)) {
      // Recovery already restored this document; re-loading would
      // shadow the durable copy with a fresh (diverging) tree.
      continue;
    }
    if (load.kind == LoadAction::Kind::kDoc) {
      auto doc = engine.LoadDocumentFromFile(load.name, load.path);
      if (!doc.ok()) {
        std::fprintf(stderr, "loading %s: %s\n", load.path.c_str(),
                     doc.status().ToString().c_str());
        // Unreadable files are usage errors (exit 1); anything else —
        // an XML parse failure, an injected fault — follows the
        // documented Status mapping so chaos runs can tell them apart.
        return doc.status().code() == xqb::StatusCode::kInvalidArgument
                   ? 1
                   : ExitCodeFor(doc.status());
      }
    } else {
      xqb::XMarkParams params;
      params.factor = load.factor;
      engine.RegisterDocument(
          load.name, xqb::GenerateXMarkDocument(&engine.store(), params));
    }
  }
  if (!engine.durability_error().ok()) {
    std::fprintf(stderr, "durability: %s\n",
                 engine.durability_error().ToString().c_str());
    xqb::FlightRecorder::Default().Dump("durability_error");
    return ExitCodeFor(engine.durability_error());
  }
  for (const auto& [name, str] : vars) {
    engine.BindVariable(name, xqb::Sequence{xqb::Item::String(str)});
  }

  if (lint) {
    if (query_path.empty()) {
      std::fprintf(stderr, "--lint requires a query file\n");
      return Usage();
    }
    std::ifstream in(query_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open query file %s\n",
                   query_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::vector<xqb::Diagnostic> diags =
        engine.LintQuery(buffer.str(), options.limits, lint_options);
    if (lint_json) {
      std::fputs(xqb::RenderDiagnosticsJson(diags).c_str(), stdout);
    } else {
      for (const xqb::Diagnostic& d : diags) {
        std::printf("%s\n", xqb::RenderDiagnosticText(d).c_str());
      }
    }
    for (const xqb::Diagnostic& d : diags) {
      if (d.severity == xqb::Severity::kError) return 2;
    }
    return 0;
  }

  if (!serve_batch_path.empty()) {
    return ServeBatch(&engine, options, serve_batch_path, clients, repeat,
                      metrics);
  }

  if (!query_path.empty()) {
    std::ifstream in(query_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open query file %s\n",
                   query_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    const int64_t q0 = xqb::MonotonicNowNs();
    auto result = engine.Execute(buffer.str(), options);
    {
      // Single-query runs bypass QueryService, so feed the black box
      // here; serve-batch entries come from Submit itself.
      const uint64_t query_hash = xqb::HashQueryText(buffer.str());
      const char* status_name =
          xqb::StatusCodeToString(result.status().code());
      const int64_t total_ns = xqb::MonotonicNowNs() - q0;
      // No purity verdict outside the service; the applied-update
      // counter is an after-the-fact stand-in (snaps_applied counts
      // the implicit top-level snap even for pure queries).
      const bool read_only = engine.last_stats().updates_applied == 0;
      xqb::SlowQueryLog& slow_log = xqb::SlowQueryLog::Default();
      if (slow_log.enabled() && total_ns >= slow_log.threshold_ns()) {
        xqb::SlowQueryLog::Entry entry;
        entry.query_hash = query_hash;
        entry.query_bytes = buffer.str().size();
        entry.read_only = read_only;
        entry.status = status_name;
        entry.total_ns = total_ns;
        entry.stats = &engine.last_stats();
        slow_log.MaybeLog(entry);
      }
      xqb::FlightEntry entry;
      entry.query_hash = query_hash;
      entry.query_bytes = static_cast<uint32_t>(buffer.str().size());
      entry.read_only = read_only;
      entry.status = status_name;
      entry.total_ns = total_ns;
      entry.result_cardinality = engine.last_stats().result_cardinality;
      xqb::FlightRecorder::Default().Record(std::move(entry));
    }
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      // kDataLoss is the fail-stop surfacing directly; an injected WAL
      // fault surfaces as FaultInjected while latching the engine's
      // durability error behind it. Either way the store is fail-stopped
      // and the black box should hit the disk.
      if (result.status().code() == xqb::StatusCode::kDataLoss ||
          !engine.durability_error().ok()) {
        xqb::FlightRecorder::Default().Dump("durability_error");
      }
      return ExitCodeFor(result.status());
    }
    auto serialized = engine.SerializeChecked(*result, indent);
    if (!serialized.ok()) {
      std::fprintf(stderr, "%s\n",
                   serialized.status().ToString().c_str());
      return ExitCodeFor(serialized.status());
    }
    std::printf("%s\n", serialized->c_str());
    if (print_plan && engine.last_used_algebra()) {
      std::fprintf(stderr, "-- plan --\n%s", engine.last_plan().c_str());
    }
    if (profile) {
      const xqb::ExecStats& stats = engine.last_stats();
      std::fprintf(stderr, "-- profile --\n%s", stats.Summary().c_str());
      if (!stats.plan.empty()) {
        std::fprintf(stderr, "-- explain analyze --\n%s\n",
                     stats.plan.c_str());
      }
    }
  }

  for (const auto& [name, path] : saves) {
    auto doc = engine.Execute("doc(\"" + name + "\")");
    if (!doc.ok()) {
      std::fprintf(stderr, "saving %s: %s\n", name.c_str(),
                   doc.status().ToString().c_str());
      return ExitCodeFor(doc.status());
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << engine.Serialize(*doc, indent);
  }

  if (do_checkpoint) {
    xqb::Status status = engine.Checkpoint();
    if (!status.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", status.ToString().c_str());
      return ExitCodeFor(status);
    }
  }
  if (check_integrity) {
    xqb::Status audit = engine.store().CheckIntegrity();
    if (!audit.ok()) {
      std::fprintf(stderr, "integrity: %s\n", audit.ToString().c_str());
      xqb::FlightRecorder::Default().Dump("integrity_failure");
      return 10;
    }
    std::fprintf(stderr, "integrity: ok (%zu live nodes)\n",
                 engine.store().live_node_count());
  }
  WriteMetricsFiles(metrics);
  return 0;
}
