// Batch runner: execute an XQuery! file against XML documents.
//
//   xqb_run [options] query.xq
//     --doc NAME=FILE     register FILE as doc('NAME') (repeatable;
//                         skipped if recovery already restored NAME)
//     --var NAME=VALUE    bind $NAME to a string value (repeatable)
//     --optimize          run through the algebraic optimizer
//     --plan              print the optimized plan (implies --optimize)
//     --mode MODE         default snap mode: ordered (default),
//                         nondeterministic, conflict-detection
//     --seed N            seed for the nondeterministic mode
//     --indent            pretty-print the result
//     --save NAME=FILE    after the query, serialize doc('NAME') to FILE
//     --xmark NAME=FACTOR register a generated XMark auction document of
//                         the given scale factor as doc('NAME')
//     --profile           print run statistics (phase timings, update
//                         counts, EXPLAIN ANALYZE plan) to stderr
//     --trace FILE        write a Chrome trace_event JSON span trace of
//                         the run to FILE (chrome://tracing / Perfetto);
//                         --trace=FILE also accepted
//     --threads N         worker threads for parallel snap evaluation
//     --failpoints SPEC   arm fault-injection points for this run, e.g.
//                         "snap.apply=nth:1,store.alloc=prob:0.01:7"
//                         (see docs/ROBUSTNESS.md for the grammar)
//     --list-failpoints   print the fail-point catalog and exit
//     --crash-on-failpoints
//                         armed fail points SIGKILL the process at the
//                         fired site instead of returning an error
//                         (crash-torture mode; simulates power loss)
//     --data-dir DIR      open the durable store at DIR before loading
//                         documents: recover from checkpoint + WAL,
//                         then log every load, applied Δ and GC
//     --sync MODE         WAL sync mode for --data-dir: always
//                         (default), batch, off
//     --recover           print recovery statistics to stderr; the
//                         query becomes optional (recover-only runs)
//     --checkpoint        write a checkpoint (and truncate the WAL)
//                         after the query; query optional
//     --check-integrity   audit store integrity after everything else;
//                         a violated invariant exits 10
//
// Exit status (documented contract — scripts and the chaos harness key
// off these; see docs/ROBUSTNESS.md):
//   0  success
//   1  usage error, unreadable query/document file, unwritable output
//   2  parse or static error in the query or an XML document
//   3  dynamic or type error raised during evaluation
//   4  update error (Section 3.2 precondition failure)
//   5  conflict-detection mode rejected the update list
//   6  a resource budget tripped (ExecLimits governor)
//   7  the run was cancelled
//   8  an armed fail point fired (fault injection)
//   9  internal error / invalid API use — indicates an engine bug
//  10  durable-store damage: recovery found unrecoverable corruption,
//      or --check-integrity found a violated store invariant

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/failpoint.h"
#include "core/engine.h"
#include "xmark/generator.h"

namespace {

/// Maps a Status class onto the documented exit-code contract above.
int ExitCodeFor(const xqb::Status& status) {
  switch (status.code()) {
    case xqb::StatusCode::kOk:
      return 0;
    case xqb::StatusCode::kParseError:
    case xqb::StatusCode::kStaticError:
      return 2;
    case xqb::StatusCode::kDynamicError:
    case xqb::StatusCode::kTypeError:
      return 3;
    case xqb::StatusCode::kUpdateError:
      return 4;
    case xqb::StatusCode::kConflictError:
      return 5;
    case xqb::StatusCode::kResourceExhausted:
      return 6;
    case xqb::StatusCode::kCancelled:
      return 7;
    case xqb::StatusCode::kFaultInjected:
      return 8;
    case xqb::StatusCode::kInvalidArgument:
    case xqb::StatusCode::kInternal:
      return 9;
    case xqb::StatusCode::kDataLoss:
      return 10;
  }
  return 9;
}

bool SplitKeyValue(const std::string& arg, std::string* key,
                   std::string* value) {
  size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *key = arg.substr(0, eq);
  *value = arg.substr(eq + 1);
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: xqb_run [--doc NAME=FILE]... [--var NAME=VALUE]...\n"
      "               [--xmark NAME=FACTOR]... [--optimize] [--plan]\n"
      "               [--mode MODE] [--seed N] [--threads N] [--indent]\n"
      "               [--profile] [--trace FILE] [--save NAME=FILE]...\n"
      "               [--failpoints SPEC] [--list-failpoints]\n"
      "               [--crash-on-failpoints] [--data-dir DIR]\n"
      "               [--sync always|batch|off] [--recover]\n"
      "               [--checkpoint] [--check-integrity] [query.xq]\n");
  return 1;
}

/// A deferred document source: loads run only after durability is open,
/// so recovery precedes (and can satisfy) them.
struct LoadAction {
  enum class Kind { kDoc, kXMark } kind;
  std::string name;
  std::string path;    // kDoc
  double factor = 0;   // kXMark
};

}  // namespace

int main(int argc, char** argv) {
  xqb::Engine engine;
  xqb::ExecOptions options;
  bool indent = false;
  bool print_plan = false;
  bool profile = false;
  bool recover = false;
  bool do_checkpoint = false;
  bool check_integrity = false;
  bool crash_on_failpoints = false;
  std::string data_dir;
  std::string sync_mode = "always";
  std::string query_path;
  std::vector<LoadAction> loads;
  std::vector<std::pair<std::string, std::string>> vars;
  std::vector<std::pair<std::string, std::string>> saves;

  // Pass 1: parse everything, deferring document loads — durability
  // must open (and recover) before the first document materializes.
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--doc") {
      const char* value = next_value("--doc");
      if (!value) return Usage();
      LoadAction load;
      load.kind = LoadAction::Kind::kDoc;
      if (!SplitKeyValue(value, &load.name, &load.path)) return Usage();
      loads.push_back(std::move(load));
    } else if (arg == "--var") {
      const char* value = next_value("--var");
      if (!value) return Usage();
      std::string name, str;
      if (!SplitKeyValue(value, &name, &str)) return Usage();
      vars.emplace_back(name, str);
    } else if (arg == "--save") {
      const char* value = next_value("--save");
      if (!value) return Usage();
      std::string name, path;
      if (!SplitKeyValue(value, &name, &path)) return Usage();
      saves.emplace_back(name, path);
    } else if (arg == "--xmark") {
      const char* value = next_value("--xmark");
      if (!value) return Usage();
      LoadAction load;
      load.kind = LoadAction::Kind::kXMark;
      std::string factor;
      if (!SplitKeyValue(value, &load.name, &factor)) return Usage();
      load.factor = std::strtod(factor.c_str(), nullptr);
      if (load.factor <= 0) {
        std::fprintf(stderr, "--xmark factor must be > 0\n");
        return Usage();
      }
      loads.push_back(std::move(load));
    } else if (arg == "--profile") {
      profile = true;
      options.collect_stats = true;
    } else if (arg == "--trace" ||
               arg.rfind("--trace=", 0) == 0) {
      if (arg == "--trace") {
        const char* value = next_value("--trace");
        if (!value) return Usage();
        options.trace_path = value;
      } else {
        options.trace_path = arg.substr(std::strlen("--trace="));
      }
      if (options.trace_path.empty()) return Usage();
    } else if (arg == "--threads") {
      const char* value = next_value("--threads");
      if (!value) return Usage();
      options.threads = static_cast<int>(std::strtol(value, nullptr, 10));
    } else if (arg == "--failpoints") {
      const char* value = next_value("--failpoints");
      if (!value) return Usage();
      options.failpoints = value;
    } else if (arg == "--list-failpoints") {
      for (const xqb::FailpointInfo& info : xqb::FailpointCatalog()) {
        std::printf("%-28s %s %s\n", info.name,
                    info.preserves_documents ? "[preserves-documents]"
                                             : "[partial-delta-ok]   ",
                    info.description);
      }
      if (!xqb::FailpointRegistry::kCompiledIn) {
        std::printf("(fail points are compiled out in this build; "
                    "rebuild with -DXQB_FAILPOINTS=ON to arm them)\n");
      }
      return 0;
    } else if (arg == "--crash-on-failpoints") {
      crash_on_failpoints = true;
    } else if (arg == "--data-dir") {
      const char* value = next_value("--data-dir");
      if (!value) return Usage();
      data_dir = value;
      if (data_dir.empty()) return Usage();
    } else if (arg == "--sync") {
      const char* value = next_value("--sync");
      if (!value) return Usage();
      sync_mode = value;
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg == "--checkpoint") {
      do_checkpoint = true;
    } else if (arg == "--check-integrity") {
      check_integrity = true;
    } else if (arg == "--optimize") {
      options.optimize = true;
    } else if (arg == "--plan") {
      options.optimize = true;
      print_plan = true;
    } else if (arg == "--indent") {
      indent = true;
    } else if (arg == "--mode") {
      const char* value = next_value("--mode");
      if (!value) return Usage();
      if (std::strcmp(value, "ordered") == 0) {
        options.default_snap_mode = xqb::ApplyMode::kOrdered;
      } else if (std::strcmp(value, "nondeterministic") == 0) {
        options.default_snap_mode = xqb::ApplyMode::kNondeterministic;
      } else if (std::strcmp(value, "conflict-detection") == 0) {
        options.default_snap_mode = xqb::ApplyMode::kConflictDetection;
      } else {
        std::fprintf(stderr, "unknown mode %s\n", value);
        return Usage();
      }
    } else if (arg == "--seed") {
      const char* value = next_value("--seed");
      if (!value) return Usage();
      options.nondet_seed = std::strtoull(value, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return Usage();
    } else if (query_path.empty()) {
      query_path = arg;
    } else {
      return Usage();
    }
  }
  // Maintenance-only invocations need no query.
  const bool maintenance = recover || do_checkpoint || check_integrity;
  if (query_path.empty() && !maintenance) return Usage();
  if ((recover || do_checkpoint) && data_dir.empty()) {
    std::fprintf(stderr, "--recover/--checkpoint require --data-dir\n");
    return Usage();
  }

  if (crash_on_failpoints) {
    xqb::FailpointRegistry::Global().set_crash_on_fire(true);
  }
  // Arm fail points here rather than at Run entry: recovery-on-open and
  // document loads happen below, before any Run, and their sites
  // (recovery.replay, wal.*, checkpoint.*) must see the configuration.
  if (!options.failpoints.empty()) {
    if (!xqb::FailpointRegistry::kCompiledIn) {
      std::fprintf(stderr,
                   "--failpoints set but fail points are compiled out "
                   "(build with -DXQB_FAILPOINTS=ON)\n");
      return 9;
    }
    xqb::Status armed =
        xqb::FailpointRegistry::Global().Configure(options.failpoints);
    if (!armed.ok()) {
      std::fprintf(stderr, "%s\n", armed.ToString().c_str());
      return 9;
    }
    // Already armed; an Execute re-arm would reset the hit counters.
    options.failpoints.clear();
  }

  // Pass 2: open durability (recovery runs here), then load documents.
  if (!data_dir.empty()) {
    auto mode = xqb::ParseSyncMode(sync_mode);
    if (!mode.ok()) {
      std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
      return Usage();
    }
    xqb::RecoveryStats stats;
    xqb::Status opened = engine.OpenDurability(data_dir, *mode, &stats);
    if (!opened.ok()) {
      std::fprintf(stderr, "opening durable store %s: %s\n",
                   data_dir.c_str(), opened.ToString().c_str());
      return ExitCodeFor(opened);
    }
    if (recover) {
      std::fprintf(
          stderr,
          "-- recovery --\n"
          "checkpoint: %s (seq %llu, %zu rejected)\n"
          "wal: %llu records replayed, %llu skipped\n"
          "torn tail: %s (%llu bytes discarded)\n"
          "documents: %zu, live nodes: %zu\n",
          stats.had_checkpoint ? stats.checkpoint_path.c_str() : "none",
          static_cast<unsigned long long>(stats.checkpoint_seq),
          stats.checkpoints_rejected,
          static_cast<unsigned long long>(stats.wal_records_replayed),
          static_cast<unsigned long long>(stats.wal_records_skipped),
          stats.torn_tail ? stats.torn_tail_error.c_str() : "none",
          static_cast<unsigned long long>(stats.torn_bytes_discarded),
          engine.document_count(),
          engine.store().live_node_count());
    }
  }
  for (const LoadAction& load : loads) {
    if (engine.durability_open() && engine.HasDocument(load.name)) {
      // Recovery already restored this document; re-loading would
      // shadow the durable copy with a fresh (diverging) tree.
      continue;
    }
    if (load.kind == LoadAction::Kind::kDoc) {
      auto doc = engine.LoadDocumentFromFile(load.name, load.path);
      if (!doc.ok()) {
        std::fprintf(stderr, "loading %s: %s\n", load.path.c_str(),
                     doc.status().ToString().c_str());
        // Unreadable files are usage errors (exit 1); anything else —
        // an XML parse failure, an injected fault — follows the
        // documented Status mapping so chaos runs can tell them apart.
        return doc.status().code() == xqb::StatusCode::kInvalidArgument
                   ? 1
                   : ExitCodeFor(doc.status());
      }
    } else {
      xqb::XMarkParams params;
      params.factor = load.factor;
      engine.RegisterDocument(
          load.name, xqb::GenerateXMarkDocument(&engine.store(), params));
    }
  }
  if (!engine.durability_error().ok()) {
    std::fprintf(stderr, "durability: %s\n",
                 engine.durability_error().ToString().c_str());
    return ExitCodeFor(engine.durability_error());
  }
  for (const auto& [name, str] : vars) {
    engine.BindVariable(name, xqb::Sequence{xqb::Item::String(str)});
  }

  if (!query_path.empty()) {
    std::ifstream in(query_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open query file %s\n",
                   query_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    auto result = engine.Execute(buffer.str(), options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return ExitCodeFor(result.status());
    }
    auto serialized = engine.SerializeChecked(*result, indent);
    if (!serialized.ok()) {
      std::fprintf(stderr, "%s\n",
                   serialized.status().ToString().c_str());
      return ExitCodeFor(serialized.status());
    }
    std::printf("%s\n", serialized->c_str());
    if (print_plan && engine.last_used_algebra()) {
      std::fprintf(stderr, "-- plan --\n%s", engine.last_plan().c_str());
    }
    if (profile) {
      const xqb::ExecStats& stats = engine.last_stats();
      std::fprintf(stderr, "-- profile --\n%s", stats.Summary().c_str());
      if (!stats.plan.empty()) {
        std::fprintf(stderr, "-- explain analyze --\n%s\n",
                     stats.plan.c_str());
      }
    }
  }

  for (const auto& [name, path] : saves) {
    auto doc = engine.Execute("doc(\"" + name + "\")");
    if (!doc.ok()) {
      std::fprintf(stderr, "saving %s: %s\n", name.c_str(),
                   doc.status().ToString().c_str());
      return ExitCodeFor(doc.status());
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << engine.Serialize(*doc, indent);
  }

  if (do_checkpoint) {
    xqb::Status status = engine.Checkpoint();
    if (!status.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", status.ToString().c_str());
      return ExitCodeFor(status);
    }
  }
  if (check_integrity) {
    xqb::Status audit = engine.store().CheckIntegrity();
    if (!audit.ok()) {
      std::fprintf(stderr, "integrity: %s\n", audit.ToString().c_str());
      return 10;
    }
    std::fprintf(stderr, "integrity: ok (%zu live nodes)\n",
                 engine.store().live_node_count());
  }
  return 0;
}
