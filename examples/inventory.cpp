// An order-processing service built on XQuery!'s compositional updates,
// exercising the engine's extension features together:
//   - fn:id for indexed stock lookups,
//   - typeswitch to dispatch on the request document's shape,
//   - snap atomic for all-or-nothing multi-line order fulfilment,
//   - snap conflict-detection to validate independent restocks.
//
// Build & run:  build/examples/inventory

#include <cstdio>

#include "core/engine.h"

namespace {

constexpr const char* kProcessOrder = R"XQ(
declare variable $req external;

declare function stock($sku) {
  id($sku, doc('inventory'))/quantity
};

(::: Fulfil one line item: decrement stock, or raise an error if the
     item is unknown. Raising inside the atomic snap rolls back the
     whole order. :::)
declare function take($line) {
  let $q := stock($line/@sku)
  return
    if (empty($q)) then error(concat("unknown sku ", $line/@sku))
    else if (number($q) < number($line/@count))
    then error(concat("insufficient stock for ", $line/@sku))
    else replace { $q/text() } with { number($q) - number($line/@count) }
};

typeswitch (doc('request')/*)
  case $o as element(order) return
    (
      snap atomic ordered {
        for $line in $o/line return take($line),
        insert { <fulfilled id="{$o/@id}"/> } into { doc('audit')/audit }
      },
      <ok order="{$o/@id}"/>
    )
  case $r as element(restock) return
    (
      (: Independent per-SKU restocks commute — each appends a
         <restocked/> record under a different item — so conflict
         detection certifies order-independence. (A replace-based
         restock could not pass: replace expands to insert+delete of
         the same node, which rule R4 always flags.) :)
      snap conflict-detection {
        for $line in $r/line return
          insert { <restocked count="{$line/@count}"/> }
            into { id($line/@sku, doc('inventory')) }
      },
      <ok restock="{count($r/line)}"/>
    )
  default $other return
    <rejected reason="unknown request {name($other)}"/>
)XQ";

void Submit(xqb::Engine* engine, const char* request_xml) {
  // Each request arrives as its own document.
  auto doc = engine->LoadDocumentFromString("request", request_xml);
  if (!doc.ok()) {
    std::fprintf(stderr, "bad request: %s\n",
                 doc.status().ToString().c_str());
    return;
  }
  auto result = engine->Execute(kProcessOrder);
  if (!result.ok()) {
    std::printf("  -> rejected: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("  -> %s\n", engine->Serialize(*result).c_str());
}

void ShowInventory(xqb::Engine* engine) {
  auto inv = engine->Execute(
      "for $i in doc('inventory')//item "
      "return concat(string($i/@id), \"=\", string($i/quantity), "
      "  if ($i/restocked) "
      "  then concat(\"(+\", sum($i/restocked/@count), \")\") else \"\")");
  std::printf("stock: %s\n", engine->Serialize(*inv).c_str());
}

}  // namespace

int main() {
  xqb::Engine engine;
  (void)engine.LoadDocumentFromString("inventory", R"(
    <inventory>
      <item id="widget"><quantity>10</quantity></item>
      <item id="gadget"><quantity>2</quantity></item>
      <item id="sprocket"><quantity>7</quantity></item>
    </inventory>)");
  (void)engine.LoadDocumentFromString("audit", "<audit/>");
  // fn:id reads @id attributes; the request documents key lines by @sku.
  engine.BindVariable("req", xqb::Sequence{});

  ShowInventory(&engine);

  std::printf("order 1: 3 widgets + 1 gadget (should succeed)\n");
  Submit(&engine,
         "<order id=\"1\"><line sku=\"widget\" count=\"3\"/>"
         "<line sku=\"gadget\" count=\"1\"/></order>");
  ShowInventory(&engine);

  std::printf("order 2: 2 sprockets + 5 gadgets (should roll back: only "
              "1 gadget left)\n");
  Submit(&engine,
         "<order id=\"2\"><line sku=\"sprocket\" count=\"2\"/>"
         "<line sku=\"gadget\" count=\"5\"/></order>");
  ShowInventory(&engine);  // Sprockets must still be 7.

  std::printf("restock: +5 widgets, +10 gadgets (commutes, passes "
              "conflict detection)\n");
  Submit(&engine,
         "<restock><line sku=\"widget\" count=\"5\"/>"
         "<line sku=\"gadget\" count=\"10\"/></restock>");
  ShowInventory(&engine);

  std::printf("restock: same SKU twice (conflict detection refuses)\n");
  Submit(&engine,
         "<restock><line sku=\"widget\" count=\"1\"/>"
         "<line sku=\"widget\" count=\"1\"/></restock>");
  ShowInventory(&engine);

  std::printf("malformed request (typeswitch default)\n");
  Submit(&engine, "<ping/>");

  auto audit = engine.Execute("doc('audit')");
  std::printf("audit: %s\n", engine.Serialize(*audit).c_str());
  return 0;
}
