#!/usr/bin/env python3
"""Compares a benchmark run against the checked-in baseline and fails
on regressions.

Usage:
  tools/check_bench_regression.py --baseline bench/baseline.json \
      --current BENCH_ci.json [--threshold 1.25] [--build-dir build]

Both files are merged google-benchmark JSON reports (see
tools/run_benchmarks.py). Benchmarks are matched by name; entries only
present on one side are reported but never fail the check (new
benchmarks land before their baseline is refreshed).

The baseline was recorded on different hardware than the CI runner, so
absolute times cannot be compared directly. Instead the check
normalizes by the *median* time ratio across all matched benchmarks:
a uniform machine-speed difference shifts every ratio equally and
cancels out, while a genuine regression in one benchmark sticks out
against the rest of the suite. A benchmark fails when its normalized
ratio exceeds --threshold (default 1.25, i.e. >25% slower than the
suite-wide trend).

Suspects are retried before the verdict: when --build-dir is given,
each flagged benchmark is rerun in its own binary and the fastest
observation kept. A scheduler-induced spike disappears on retry; a
real regression reproduces.

Sub-microsecond benchmarks additionally jitter across *processes*
(code layout / alignment shifts between builds and runs move them by
tens of percent), which no amount of in-process repetition removes.
--slack-ns (default 500) therefore widens each benchmark's effective
threshold by slack_ns / baseline_ns: negligible for anything above a
few microseconds, but it keeps a 1us benchmark from failing the gate
over a 300ns wobble while still catching a 2x regression there.

Some benchmarks are inherently noisier than others (allocation-heavy
ones move with heap/page-cache state). When the baseline was folded
over several sweeps (tools/run_benchmarks.py --fold), each entry
carries fold_max_real_time, the slowest observation next to the kept
fastest; the checker widens that benchmark's threshold by half its
max/min spread (capped at +0.5) — a benchmark whose identical runs
on the recording machine differed by 30% cannot honestly be gated at
25%, while stable benchmarks keep the tight gate.

Benchmarks present in the current report but missing from the
baseline are WARNED about loudly (they run ungated — a new benchmark
is a blind spot until its baseline lands). To absorb them, rerun
with --update-baseline: the baseline file is rewritten in place with
the current report's raw entries, keeping baseline-only entries (so
a filtered run does not drop the rest of the suite) and the current
report's machine context. Commit the refreshed bench/baseline.json
in the same change that adds the benchmark.
Only the standard library is used.
"""

import argparse
import json
import re
import subprocess
import sys

# google-benchmark time_unit values, in nanoseconds.
UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def entry_time_ns(entry):
    return entry["real_time"] * UNIT_NS[entry.get("time_unit", "ns")]


def fold(out, entry):
    """Folds one iteration row into `out`, keeping the fastest run.

    Repetitions share a run_name; noise on a timing benchmark is
    one-sided (preemption only slows things down), so the min over
    repetitions is the stablest point estimate.
    """
    # Aggregates are recomputed here; errored runs (SkipWithError, e.g.
    # the intentionally budget-tripped Q8 nested loop) report 0.0 time.
    if entry.get("run_type") == "aggregate" or entry.get("error_occurred"):
        return
    name = entry.get("run_name", entry["name"])
    ns = entry_time_ns(entry)
    # Per-phase counters (phase_*_ms, present when the run was recorded
    # with run_benchmarks.py --stats) follow the kept-fastest entry, so
    # a failure report can name the phase that moved.
    phases = {key: value for key, value in entry.items()
              if key.startswith("phase_")
              and isinstance(value, (int, float))}
    if name not in out:
        out[name] = {"ns": ns, "binary": entry.get("binary"),
                     "spread": 1.0, "phases": phases}
    elif ns < out[name]["ns"]:
        out[name]["ns"] = ns
        if phases:
            out[name]["phases"] = phases
    if "fold_max_real_time" in entry and entry["real_time"] > 0:
        # max/min over the baseline sweeps: how much this benchmark
        # moves between identical runs on the recording machine.
        out[name]["spread"] = max(
            out[name]["spread"],
            entry["fold_max_real_time"] / entry["real_time"])


def load(path):
    """Loads a merged report, dying with a clear message (not a
    traceback) on a missing, unreadable, or corrupt file."""
    try:
        with open(path) as f:
            report = json.load(f)
    except FileNotFoundError:
        sys.exit(f"error: benchmark report {path!r} does not exist; "
                 "run tools/run_benchmarks.py first (CI uploads it as "
                 "the BENCH_*.json artifact)")
    except OSError as e:
        sys.exit(f"error: cannot read benchmark report {path!r}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: benchmark report {path!r} is not valid JSON "
                 f"({e}); was the run interrupted? Regenerate it with "
                 "tools/run_benchmarks.py")
    if not isinstance(report, dict):
        sys.exit(f"error: benchmark report {path!r} is valid JSON but "
                 "not a report object (expected google-benchmark "
                 "merged output with a 'benchmarks' array)")
    out = {}
    for entry in report.get("benchmarks", []):
        try:
            fold(out, entry)
        except (KeyError, TypeError, ValueError) as e:
            sys.exit(f"error: malformed benchmark entry in {path!r} "
                     f"({e}): {json.dumps(entry)[:200]}")
    return out


def name_filter(names):
    """Builds a --benchmark_filter regex matching exactly `names`.

    The displayed name may carry a /real_time or /manual_time suffix
    that the registered benchmark name (which the filter matches) also
    carries, so escape the whole thing verbatim.
    """
    return "|".join("^" + re.escape(n) + "$" for n in names)


def retry_suspects(current, suspects, build_dir, min_time, repetitions):
    by_binary = {}
    for name in suspects:
        binary = current[name].get("binary")
        if binary is None:
            continue
        by_binary.setdefault(binary, []).append(name)
    for binary, names in sorted(by_binary.items()):
        cmd = [f"{build_dir}/bench/{binary}",
               "--benchmark_format=json",
               f"--benchmark_min_time={min_time}",
               # Retries are targeted, so more repetitions are cheap
               # and buy extra chances to dodge a scheduling spike.
               f"--benchmark_repetitions={max(repetitions, 5)}",
               f"--benchmark_filter={name_filter(names)}"]
        print(f"[bench] retrying {len(names)} suspect(s) in {binary}")
        try:
            proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                                  check=False)
        except OSError as e:
            print(f"warning: cannot execute {cmd[0]} ({e}); "
                  "keeping original timings")
            continue
        if proc.returncode != 0:
            print(f"warning: retry in {binary} exited with "
                  f"{proc.returncode}; keeping original timings")
            continue
        try:
            report = json.loads(proc.stdout)
        except json.JSONDecodeError as e:
            print(f"warning: retry in {binary} produced invalid JSON "
                  f"({e}); keeping original timings")
            continue
        for entry in report.get("benchmarks", []):
            fold(current, entry)


def dominant_phase_delta(baseline_entry, current_entry):
    """Names the per-phase timing that moved the most, if both sides
    carry phase counters (run_benchmarks.py --stats); None otherwise."""
    base = baseline_entry.get("phases", {})
    cur = current_entry.get("phases", {})
    deltas = {key: cur[key] - base[key] for key in cur if key in base}
    if not deltas:
        return None
    key = max(deltas, key=lambda k: abs(deltas[k]))
    phase = key[len("phase_"):].removesuffix("_ms").replace("_", "-")
    ratio = cur[key] / base[key] if base[key] > 0 else float("inf")
    return (f"dominant phase: {phase} {deltas[key]:+.3f}ms "
            f"({base[key]:.3f} -> {cur[key]:.3f}ms, {ratio:.2f}x)")


def update_baseline(baseline_path, current_path):
    """Rewrites `baseline_path` from the raw current report.

    Entries (keyed by run_name) present in the current report replace
    their baseline counterparts; baseline-only entries survive, so a
    --benchmark_filter'ed refresh does not silently drop the rest of
    the suite. The context block is taken from the current report —
    after a refresh the baseline describes one machine, not a mix.
    """
    try:
        with open(current_path) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read current report {current_path!r} "
                 f"for --update-baseline: {e}")
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except FileNotFoundError:
        baseline = {"context": {}, "benchmarks": []}
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read baseline {baseline_path!r} "
                 f"for --update-baseline: {e}")

    def run_names(entries):
        return {e.get("run_name", e.get("name")) for e in entries}

    refreshed = run_names(current.get("benchmarks", []))
    kept = [e for e in baseline.get("benchmarks", [])
            if e.get("run_name", e.get("name")) not in refreshed]
    merged = {"context": current.get("context",
                                     baseline.get("context", {})),
              "benchmarks": kept + current.get("benchmarks", [])}
    with open(baseline_path, "w") as f:
        json.dump(merged, f, indent=1)
        f.write("\n")
    print(f"[bench] baseline {baseline_path} updated: "
          f"{len(refreshed)} run name(s) refreshed from "
          f"{current_path}, {len(kept)} baseline-only entr(y/ies) "
          "kept")


def median_of(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def find_regressions(baseline, current, matched, threshold, slack_ns):
    """Returns (per-name normalized ratios, global median, failures).

    Each benchmark's time ratio is normalized by the median ratio of
    its own binary: binaries run contiguously, so background load is
    roughly constant within one and a load swing mid-sweep does not
    smear across the whole suite. A wholesale slowdown of one binary
    would vanish under its own median, so binaries whose median
    exceeds threshold x the global median fail as a unit (compared
    globally, where machine-speed differences still cancel).
    """
    ratios = {name: current[name]["ns"] / baseline[name]["ns"]
              for name in matched if baseline[name]["ns"] > 0}
    median = median_of(ratios.values())

    by_binary = {}
    for name in ratios:
        by_binary.setdefault(current[name].get("binary"), []).append(name)
    binary_median = {b: median_of([ratios[n] for n in names])
                     for b, names in by_binary.items()}

    normalized = {}
    failures = []
    for name in matched:
        if name not in ratios:
            continue
        norm = binary_median[current[name].get("binary")]
        normalized[name] = ratios[name] / norm
        # Absolute slack: a relative gate alone over-triggers on
        # sub-microsecond benchmarks (see module docstring). Spread:
        # a benchmark whose identical baseline runs differed by 30%
        # cannot be gated at 25%; widen its threshold by half its
        # demonstrated variance (half, because both sides compare
        # min-folds, which sit far below the max observation; capped
        # so a real 2x still fails even on the noisiest benchmark).
        spread = min(0.5 * (baseline[name].get("spread", 1.0) - 1.0), 0.5)
        effective = threshold + slack_ns / baseline[name]["ns"] + spread
        if normalized[name] > effective or norm / median > threshold:
            failures.append(name)
    return normalized, median, failures


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--baseline", default="bench/baseline.json")
    parser.add_argument("--current", default="BENCH_ci.json")
    parser.add_argument("--threshold", type=float, default=1.25)
    parser.add_argument("--slack-ns", type=float, default=500.0,
                        help="absolute headroom added to the threshold "
                             "as slack_ns/baseline_ns; damps alignment "
                             "jitter on sub-microsecond benchmarks")
    parser.add_argument("--build-dir", default="",
                        help="build tree for retrying suspects; empty "
                             "disables retries")
    parser.add_argument("--min-time", default="0.05")
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline from the raw "
                             "--current report (refreshing matched "
                             "entries, adding new ones, keeping "
                             "baseline-only entries) instead of "
                             "checking; commit the result")
    args = parser.parse_args()

    if args.update_baseline:
        update_baseline(args.baseline, args.current)
        return

    baseline = load(args.baseline)
    current = load(args.current)

    matched = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))
    if only_baseline:
        print(f"note: {len(only_baseline)} baseline-only benchmarks "
              f"(removed, or a filtered run?): "
              f"{', '.join(only_baseline[:5])} ...")
    if only_current:
        # Loud, itemized, and actionable: an unknown benchmark runs
        # ungated, which silently defeats the point of the gate.
        print(f"warning: {len(only_current)} benchmark(s) have no "
              "baseline entry and are NOT gated:")
        for name in only_current:
            print(f"  {name}")
        print("warning: refresh the baseline with "
              f"`tools/check_bench_regression.py --baseline "
              f"{args.baseline} --current {args.current} "
              "--update-baseline` and commit it")
    if not matched:
        sys.exit("error: no benchmarks in common with the baseline")

    ratios, median, failures = find_regressions(
        baseline, current, matched, args.threshold, args.slack_ns)
    for _ in range(2):
        if not failures or not args.build_dir:
            break
        retry_suspects(current, failures, args.build_dir,
                       args.min_time, args.repetitions)
        ratios, median, failures = find_regressions(
            baseline, current, matched, args.threshold, args.slack_ns)

    print(f"[bench] {len(matched)} matched benchmarks, median time "
          f"ratio {median:.3f} (machine-speed normalizer)")
    for name in matched:
        if name not in ratios:
            continue
        flag = "  <-- REGRESSION" if name in failures else ""
        print(f"  {ratios[name]:6.3f}x  {name}{flag}")

    if failures:
        print(f"\nerror: {len(failures)} benchmark(s) regressed more "
              f"than {args.threshold:.2f}x vs the suite trend:")
        for name in failures:
            print(f"  {name}")
            hint = dominant_phase_delta(baseline[name], current[name])
            if hint:
                print(f"    {hint}")
        sys.exit(1)
    print("[bench] no regressions")


if __name__ == "__main__":
    main()
