#!/usr/bin/env python3
"""Runs every google-benchmark binary in a build tree and merges the
JSON reports into one file (the BENCH_ci.json artifact in CI).

Usage:
  tools/run_benchmarks.py --build-dir build --out BENCH_ci.json \
      [--min-time 0.05] [--filter REGEX]

Only the standard library is used. Each binary under <build-dir>/bench
named bench_* is run with --benchmark_format=json; their "benchmarks"
arrays are concatenated, with each entry annotated with the binary it
came from ("binary" key). A binary that fails to run fails the script.
"""

import argparse
import json
import os
import subprocess
import sys


def find_bench_binaries(build_dir):
    bench_dir = os.path.join(build_dir, "bench")
    if not os.path.isdir(bench_dir):
        sys.exit(f"error: no bench directory under {build_dir}")
    binaries = []
    for name in sorted(os.listdir(bench_dir)):
        path = os.path.join(bench_dir, name)
        if name.startswith("bench_") and os.access(path, os.X_OK) \
                and os.path.isfile(path):
            binaries.append(path)
    if not binaries:
        sys.exit(f"error: no bench_* binaries in {bench_dir}")
    return binaries


def run_one(path, min_time, repetitions, bench_filter, stats=False):
    cmd = [path,
           "--benchmark_format=json",
           f"--benchmark_min_time={min_time}",
           f"--benchmark_repetitions={repetitions}"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    env = dict(os.environ)
    if stats:
        # Stats-aware benchmarks (bench_q8_join) collect ExecStats and
        # embed per-phase times as phase_*_ms counters in their JSON.
        env["XQB_BENCH_STATS"] = "1"
    try:
        proc = subprocess.run(cmd, stdout=subprocess.PIPE, env=env,
                              check=False)
    except OSError as e:
        sys.exit(f"error: cannot execute {path}: {e}")
    if proc.returncode != 0:
        sys.exit(f"error: {path} exited with {proc.returncode}")
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        sys.exit(f"error: {os.path.basename(path)} produced invalid "
                 f"JSON ({e}); first bytes: "
                 f"{proc.stdout[:120]!r} — did the binary crash "
                 "mid-report or print to stdout?")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_ci.json")
    parser.add_argument("--min-time", default="0.05",
                        help="--benchmark_min_time per binary (seconds)")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="repetitions per benchmark; the regression "
                             "checker keeps the fastest, which filters "
                             "out one-sided scheduling noise")
    parser.add_argument("--filter", default="",
                        help="--benchmark_filter regex passed to binaries")
    parser.add_argument("--stats", action="store_true",
                        help="set XQB_BENCH_STATS so stats-aware "
                             "benchmarks embed per-phase timings "
                             "(phase_*_ms counters) in the report; the "
                             "regression checker then names the phase "
                             "that moved")
    parser.add_argument("--fold", action="store_true",
                        help="merge with an existing --out file, keeping "
                             "the fastest entry per benchmark; run several "
                             "folded sweeps to record a noise-floor "
                             "baseline (see bench/baseline.json)")
    args = parser.parse_args()

    merged = {"context": None, "benchmarks": []}
    previous = {}
    if args.fold and os.path.exists(args.out):
        try:
            with open(args.out) as f:
                prior = json.load(f)
        except OSError as e:
            sys.exit(f"error: cannot read prior --fold file "
                     f"{args.out!r}: {e}")
        except json.JSONDecodeError as e:
            sys.exit(f"error: prior --fold file {args.out!r} is not "
                     f"valid JSON ({e}); delete it to start a fresh "
                     "fold, or point --out elsewhere")
        if not isinstance(prior, dict):
            sys.exit(f"error: prior --fold file {args.out!r} is not a "
                     "report object; delete it to start a fresh fold")
        merged["context"] = prior.get("context")
        for entry in prior.get("benchmarks", []):
            key = entry.get("run_name") or entry.get("name")
            if key is None:
                sys.exit(f"error: prior --fold file {args.out!r} has an "
                         "entry with neither run_name nor name; delete "
                         "it to start a fresh fold")
            previous[key] = entry
    for path in find_bench_binaries(args.build_dir):
        name = os.path.basename(path)
        print(f"[bench] {name}", flush=True)
        report = run_one(path, args.min_time, args.repetitions,
                         args.filter, stats=args.stats)
        if merged["context"] is None:
            merged["context"] = report.get("context", {})
        for entry in report.get("benchmarks", []):
            entry["binary"] = name
            if args.fold:
                key = entry.get("run_name", entry["name"])
                kept = previous.get(key)
                usable = (kept is not None
                          and kept.get("run_type") != "aggregate"
                          and not kept.get("error_occurred"))
                if entry.get("run_type") == "aggregate" \
                        or entry.get("error_occurred"):
                    if kept is None:
                        previous[key] = entry
                elif not usable:
                    entry["fold_max_real_time"] = entry["real_time"]
                    previous[key] = entry
                else:
                    # Keep the fastest observation but remember the
                    # slowest: the regression checker widens a noisy
                    # benchmark's threshold by its demonstrated spread.
                    slowest = max(entry["real_time"],
                                  kept.get("fold_max_real_time",
                                           kept["real_time"]))
                    if entry["real_time"] < kept["real_time"]:
                        previous[key] = entry
                    previous[key]["fold_max_real_time"] = slowest
            else:
                merged["benchmarks"].append(entry)

    if args.fold:
        merged["benchmarks"] = list(previous.values())

    try:
        with open(args.out, "w") as f:
            json.dump(merged, f, indent=2)
            f.write("\n")
    except OSError as e:
        sys.exit(f"error: cannot write {args.out!r}: {e}")
    print(f"[bench] wrote {len(merged['benchmarks'])} entries to {args.out}")


if __name__ == "__main__":
    main()
