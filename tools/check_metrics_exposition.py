#!/usr/bin/env python3
"""Lints a Prometheus text exposition (promtool-style, stdlib only).

Usage:
  tools/check_metrics_exposition.py METRICS_FILE [--previous OLDER_FILE]

Checks, against the text exposition format (version 0.0.4):
  - metric and label name syntax;
  - every sample is preceded by a # TYPE line for its family, and the
    sample name agrees with the declared type (counter samples on a
    counter family, _bucket/_sum/_count on a histogram family);
  - counter family names end in _total;
  - sample values parse as numbers; no duplicate series;
  - histogram series are internally consistent per label set: bucket
    counts are cumulative (non-decreasing in le order), an le="+Inf"
    bucket exists and equals _count.

With --previous (an earlier scrape of the same process), counters and
histogram _count/_bucket samples must be monotonically non-decreasing
— the property Prometheus rate() relies on. CI runs this against the
snapshot scraped in the service-stress job (see .github/workflows).

Exit status: 0 clean, 1 findings, 2 usage/IO error.
"""

import argparse
import math
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One sample line: name{labels} value [timestamp]. Labels optional.
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)(\s+\S+)?$")
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class Linter:
    def __init__(self):
        self.errors = []

    def error(self, lineno, message):
        self.errors.append(f"line {lineno}: {message}")


def parse_labels(raw, lineno, lint):
    """Parses '{a="x",b="y"}' honoring \\, \" and \\n escapes. Returns a
    tuple of (name, value) pairs, or None on a syntax error."""
    if raw is None:
        return ()
    body = raw[1:-1]
    labels = []
    i = 0
    while i < len(body):
        eq = body.find("=", i)
        if eq < 0:
            lint.error(lineno, f"malformed labels {raw!r}")
            return None
        name = body[i:eq]
        if not LABEL_NAME_RE.match(name):
            lint.error(lineno, f"invalid label name {name!r}")
            return None
        if eq + 1 >= len(body) or body[eq + 1] != '"':
            lint.error(lineno, f"label {name!r} value is not quoted")
            return None
        j = eq + 2
        value = []
        while j < len(body) and body[j] != '"':
            if body[j] == "\\":
                if j + 1 >= len(body):
                    lint.error(lineno, f"dangling escape in {raw!r}")
                    return None
                esc = body[j + 1]
                value.append({"\\": "\\", '"': '"', "n": "\n"}.get(esc))
                if value[-1] is None:
                    lint.error(lineno, f"unknown escape \\{esc} in {raw!r}")
                    return None
                j += 2
            else:
                value.append(body[j])
                j += 1
        if j >= len(body):
            lint.error(lineno, f"unterminated label value in {raw!r}")
            return None
        labels.append((name, "".join(value)))
        i = j + 1
        if i < len(body):
            if body[i] != ",":
                lint.error(lineno, f"expected ',' between labels in {raw!r}")
                return None
            i += 1
    return tuple(labels)


def base_family(name, types):
    """Maps a sample name to its declared family: histogram samples use
    the _bucket/_sum/_count suffixes of the base name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def parse_exposition(path, lint):
    """Returns (types, samples): declared # TYPE per family, and every
    sample as {(name, labels): value}."""
    types = {}
    helps = set()
    samples = {}
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e}")

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                lint.error(lineno, "malformed # HELP line")
                continue
            name = parts[2]
            if not METRIC_NAME_RE.match(name):
                lint.error(lineno, f"invalid metric name {name!r} in HELP")
            if name in helps:
                lint.error(lineno, f"duplicate # HELP for {name}")
            helps.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                lint.error(lineno, "malformed # TYPE line")
                continue
            name, typ = parts[2], parts[3]
            if not METRIC_NAME_RE.match(name):
                lint.error(lineno, f"invalid metric name {name!r} in TYPE")
            if typ not in VALID_TYPES:
                lint.error(lineno, f"unknown type {typ!r} for {name}")
            if name in types:
                lint.error(lineno, f"duplicate # TYPE for {name}")
            types[name] = typ
            continue
        if line.startswith("#"):
            continue  # Free-form comment.

        match = SAMPLE_RE.match(line)
        if not match:
            lint.error(lineno, f"unparseable sample line {line!r}")
            continue
        name, raw_labels, raw_value = match.group(1), match.group(2), \
            match.group(3)
        labels = parse_labels(raw_labels, lineno, lint)
        if labels is None:
            continue
        try:
            value = float(raw_value)
        except ValueError:
            lint.error(lineno, f"non-numeric value {raw_value!r} for {name}")
            continue
        family = base_family(name, types)
        if family not in types:
            lint.error(lineno, f"sample {name!r} has no preceding # TYPE")
        elif types[family] == "counter":
            if not family.endswith("_total"):
                lint.error(lineno,
                           f"counter {family!r} does not end in _total")
        elif types[family] == "histogram":
            if name == family:
                lint.error(
                    lineno,
                    f"histogram {family!r} exposes a bare sample; expected "
                    "_bucket/_sum/_count")
        key = (name, labels)
        if key in samples:
            lint.error(lineno, f"duplicate series {name}{dict(labels)}")
        samples[key] = value
    return types, samples


def check_histograms(types, samples, lint):
    """Per histogram family and label set (minus le): buckets cumulative,
    +Inf present and equal to _count."""
    series = {}  # (family, labels-without-le) -> {le: value}
    counts = {}
    for (name, labels), value in samples.items():
        family = base_family(name, types)
        if types.get(family) != "histogram":
            continue
        rest = tuple((k, v) for k, v in labels if k != "le")
        if name == family + "_bucket":
            le = dict(labels).get("le")
            if le is None:
                lint.error(0, f"{name}{dict(labels)}: _bucket without le")
                continue
            series.setdefault((family, rest), {})[le] = value
        elif name == family + "_count":
            counts[(family, rest)] = value

    for (family, rest), buckets in sorted(series.items()):
        def le_key(le):
            return math.inf if le == "+Inf" else float(le)
        ordered = sorted(buckets, key=le_key)
        previous = -1.0
        for le in ordered:
            if buckets[le] < previous:
                lint.error(
                    0, f"{family}{dict(rest)}: bucket le={le} count "
                    f"{buckets[le]} < previous {previous} (not cumulative)")
            previous = buckets[le]
        if "+Inf" not in buckets:
            lint.error(0, f"{family}{dict(rest)}: missing le=\"+Inf\" bucket")
        elif (family, rest) in counts and \
                buckets["+Inf"] != counts[(family, rest)]:
            lint.error(
                0, f"{family}{dict(rest)}: le=\"+Inf\" "
                f"({buckets['+Inf']}) != _count ({counts[(family, rest)]})")
        if (family, rest) not in counts:
            lint.error(0, f"{family}{dict(rest)}: missing _count sample")


def check_monotonic(types, old_samples, new_samples, lint):
    """Counters (and histogram _count/_bucket) never go backwards
    between two scrapes of one process."""
    for key, old_value in sorted(old_samples.items()):
        name, labels = key
        family = base_family(name, types)
        monotonic = (
            types.get(family) == "counter" or
            (types.get(family) == "histogram" and name != family + "_sum"))
        if not monotonic or key not in new_samples:
            continue
        if new_samples[key] < old_value:
            lint.error(
                0, f"{name}{dict(labels)}: went backwards between scrapes "
                f"({old_value} -> {new_samples[key]})")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("metrics_file")
    parser.add_argument("--previous",
                        help="earlier scrape of the same process; counters "
                             "must be monotonically non-decreasing")
    args = parser.parse_args()

    lint = Linter()
    types, samples = parse_exposition(args.metrics_file, lint)
    if not samples and not lint.errors:
        lint.error(0, "exposition contains no samples")
    check_histograms(types, samples, lint)
    if args.previous:
        old_lint = Linter()
        old_types, old_samples = parse_exposition(args.previous, old_lint)
        for message in old_lint.errors:
            lint.errors.append(f"(previous) {message}")
        check_monotonic(types, old_samples, samples, lint)

    if lint.errors:
        for message in lint.errors:
            print(f"check_metrics_exposition: {message}", file=sys.stderr)
        print(f"check_metrics_exposition: {len(lint.errors)} finding(s) "
              f"in {args.metrics_file}", file=sys.stderr)
        return 1
    families = len(types)
    print(f"check_metrics_exposition: OK ({families} families, "
          f"{len(samples)} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
