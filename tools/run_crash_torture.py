#!/usr/bin/env python3
"""Crash-torture driver: SIGKILL the engine at every durability fail
point, then recover and audit.

For each WAL/checkpoint fail point, each kill occurrence (seed s arms
`<point>=nth:s`, so the process dies at the s-th time execution crosses
that site), and each thread count, the harness:

  1. runs a multi-snap workload under `xqb_run --data-dir D
     --crash-on-failpoints` — the armed point SIGKILLs the process at
     the fired site, mid-write, with no destructors or flushes (a power
     loss, not an error return);
  2. recovers with `xqb_run --data-dir D --recover --check-integrity`
     and requires exit 0 — the store passed the full integrity audit;
  3. asserts the recovered document is a *snap-aligned prefix* of the
     workload: hits n="1".."k" for some k <= total, no hole, no
     reorder, no partial snap.

checkpoint.* points torture the checkpoint path (workload, then a
crashing `--checkpoint` run — the durable state must survive losing the
checkpoint attempt); recovery.replay tortures recovery itself (crash
during replay, then recover again — recovery must be idempotent).

Seeds where the occurrence count exceeds the workload's crossings of
the site simply run to completion; those count as `completed` and still
go through recovery + audit. Exit status: 0 when every case recovered
to an aligned prefix, 1 on any violation, 2 on usage errors.
"""

import argparse
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile

TORTURE_POINTS = (
    "wal.append",
    "wal.fsync",
    "checkpoint.write",
    "checkpoint.rename",
    "recovery.replay",
)

WORKLOAD_XQ = (
    'for $i in 1 to {snaps} return snap {{ insert {{ <hit n="{{$i}}"/> }} '
    'into {{ doc("site")/site }} }}'
)
READ_XQ = 'doc("site")'
HIT_RE = re.compile(r'<hit n="(\d+)"/>')


def find_binary(build_dir):
    for candidate in (
        os.path.join(build_dir, "examples", "xqb_run"),
        os.path.join(build_dir, "xqb_run"),
    ):
        if os.path.isfile(candidate) and os.access(candidate, os.X_OK):
            return candidate
    sys.exit(
        f"error: xqb_run not found under {build_dir!r}; build it first "
        "(cmake --build <build-dir> --target xqb_run)"
    )


def have_failpoints(binary):
    proc = subprocess.run(
        [binary, "--list-failpoints"], capture_output=True, text=True
    )
    if proc.returncode != 0:
        sys.exit(f"error: --list-failpoints failed: {proc.stderr.strip()}")
    compiled_out = any(
        line.startswith("(") for line in proc.stdout.splitlines()
    )
    catalog = {
        line.split()[0]
        for line in proc.stdout.splitlines()
        if line and not line.startswith("(")
    }
    missing = [p for p in TORTURE_POINTS if p not in catalog]
    if missing and not compiled_out:
        sys.exit(f"error: fail points missing from catalog: {missing}")
    return not compiled_out


def run(cmd, timeout):
    try:
        return subprocess.run(
            cmd, capture_output=True, text=True, timeout=timeout
        )
    except subprocess.TimeoutExpired:
        return None


class Case:
    """One (point, seed, threads) torture case on a fresh data dir."""

    def __init__(self, binary, point, seed, threads, snaps, timeout):
        self.binary = binary
        self.point = point
        self.seed = seed
        self.threads = threads
        self.snaps = snaps
        self.timeout = timeout
        self.dir = tempfile.mkdtemp(prefix="xqb_torture_")
        # Sibling of the data dir so it survives the rmtree on failure.
        self.flight = self.dir + ".flight.jsonl"
        self.keep_flight = False
        self.log = []

    def cleanup(self):
        shutil.rmtree(self.dir, ignore_errors=True)
        suffixes = [".q.xq", ".site.xml"]
        if not self.keep_flight:
            suffixes.append(".flight.jsonl")
        for suffix in suffixes:
            try:
                os.unlink(self.dir + suffix)
            except OSError:
                pass

    def xqb(self, *args, crash_spec=None, query=None):
        # Every run arms the flight recorder; a later run in the same
        # case overwrites an earlier dump, so a kept file holds the
        # last run that hit a dump trigger. xqb_run writes it silently,
        # leaving the stderr the harness asserts on untouched.
        cmd = [self.binary, "--data-dir", self.dir, "--threads",
               str(self.threads), "--flight-dump", self.flight, *args]
        if crash_spec:
            cmd += ["--crash-on-failpoints", "--failpoints", crash_spec]
        if query is not None:
            path = os.path.join(self.dir + ".q.xq")
            with open(path, "w") as f:
                f.write(query)
            cmd.append(path)
        self.log.append(" ".join(cmd))
        return run(cmd, self.timeout)

    def workload(self, crash_spec=None):
        site = os.path.join(self.dir + ".site.xml")
        with open(site, "w") as f:
            f.write("<site/>")
        return self.xqb(
            "--doc", "site=" + site,
            crash_spec=crash_spec,
            query=WORKLOAD_XQ.format(snaps=self.snaps),
        )

    def execute(self):
        """Runs the case; returns (outcome, error) where error is None
        on success and outcome is 'killed' or 'completed'."""
        spec = f"{self.point}=nth:{self.seed}"
        if self.point.startswith("checkpoint."):
            setup = self.workload()
            if setup is None or setup.returncode != 0:
                return "setup", self._fail("workload setup", setup)
            crash = self.xqb("--checkpoint", crash_spec=spec)
        elif self.point == "recovery.replay":
            setup = self.workload()
            if setup is None or setup.returncode != 0:
                return "setup", self._fail("workload setup", setup)
            crash = self.xqb("--recover", crash_spec=spec)
        else:
            crash = self.workload(crash_spec=spec)

        if crash is None:
            return "hang", self._fail("crash run hung", crash)
        if crash.returncode == -signal.SIGKILL or crash.returncode == 137:
            outcome = "killed"
        elif crash.returncode == 0:
            outcome = "completed"  # Occurrence count beyond the run.
        else:
            return "error", self._fail(
                f"crash run exited {crash.returncode}", crash
            )
        return outcome, self.verify()

    def verify(self):
        # Recovery + integrity audit must succeed unconditionally.
        audit = self.xqb("--recover", "--check-integrity")
        if audit is None:
            return self._fail("recovery hung", audit)
        if audit.returncode != 0:
            return self._fail(
                f"recovery exited {audit.returncode}", audit
            )
        if "documents: 0," in audit.stderr:
            # The kill beat even the document-load record: the empty
            # store is the (zero-length) snap-aligned prefix.
            return None
        recovered = self.xqb(query=READ_XQ)
        if recovered is None:
            return self._fail("read-back hung", recovered)
        if recovered.returncode != 0:
            return self._fail(
                f"read-back exited {recovered.returncode}", recovered
            )
        hits = [int(n) for n in HIT_RE.findall(recovered.stdout)]
        if hits != list(range(1, len(hits) + 1)):
            return self._fail(
                f"recovered hits are not a contiguous prefix: {hits}",
                recovered,
            )
        if len(hits) > self.snaps:
            return self._fail(f"more hits than snaps: {hits}", recovered)
        return None

    def _fail(self, what, proc):
        detail = ""
        if proc is not None:
            detail = f"\n  stderr: {proc.stderr.strip()}"
        if os.path.exists(self.flight) and os.path.getsize(self.flight) > 0:
            # Keep the dump past cleanup() so the post-mortem can read
            # the last requests the engine saw before the failure.
            self.keep_flight = True
            detail += f"\n  flight recorder dump: {self.flight}"
        return (
            f"{self.point} seed={self.seed} threads={self.threads}: "
            f"{what}{detail}\n  repro:\n    " + "\n    ".join(self.log)
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument(
        "--seeds", type=int, default=20,
        help="kill occurrences per point: nth:1..nth:N (default: 20)",
    )
    parser.add_argument(
        "--threads", default="1,8",
        help="comma-separated thread counts to sweep (default: 1,8)",
    )
    parser.add_argument(
        "--snaps", type=int, default=8,
        help="snaps per workload run (default: 8)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-run hang timeout in seconds",
    )
    parser.add_argument(
        "--points", default=",".join(TORTURE_POINTS),
        help="comma-separated fail points to torture",
    )
    args = parser.parse_args()

    try:
        thread_counts = [int(t) for t in args.threads.split(",") if t]
    except ValueError:
        sys.exit(f"error: bad --threads value {args.threads!r}")
    points = [p for p in args.points.split(",") if p]
    unknown = [p for p in points if p not in TORTURE_POINTS]
    if unknown:
        sys.exit(f"error: not durability fail points: {unknown}")
    if args.seeds < 1:
        sys.exit("error: --seeds must be >= 1")

    binary = find_binary(args.build_dir)
    if not have_failpoints(binary):
        print(
            "fail points are compiled out in this build "
            "(-DXQB_FAILPOINTS=OFF); nothing to torture"
        )
        return 0

    failures = []
    table = {p: {"killed": 0, "completed": 0, "failed": 0} for p in points}
    cases = 0
    for point in points:
        for seed in range(1, args.seeds + 1):
            for threads in thread_counts:
                case = Case(binary, point, seed, threads, args.snaps,
                            args.timeout)
                try:
                    outcome, error = case.execute()
                finally:
                    case.cleanup()
                cases += 1
                if error is not None:
                    table[point]["failed"] += 1
                    failures.append(error)
                else:
                    table[point][outcome] += 1

    print(f"crash torture: {cases} cases, {len(points)} fail points, "
          f"seeds 1..{args.seeds}, threads={thread_counts}, "
          f"{args.snaps} snaps per workload")
    width = max(len(p) for p in points)
    for point in points:
        t = table[point]
        print(f"  {point:<{width}}  killed x{t['killed']}, "
              f"completed x{t['completed']}, failed x{t['failed']}")
    if failures:
        print(f"\n{len(failures)} FAILURE(S):", file=sys.stderr)
        for failure in failures:
            print("  " + failure.replace("\n", "\n  "), file=sys.stderr)
        return 1
    print("all clear: every kill recovered to an integrity-clean, "
          "snap-aligned prefix")
    return 0


if __name__ == "__main__":
    sys.exit(main())
