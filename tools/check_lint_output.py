#!/usr/bin/env python3
"""Gates the linter's machine-readable output in CI.

Usage:
  tools/check_lint_output.py --runner build/examples/xqb_run \
      [--corpus tests/analysis/corpus] [--demo examples/lint_demo.xq]

For every <name>.xq in the corpus directory, runs

  xqb_run --lint=json <name>.xq

and byte-compares stdout against the checked-in <name>.expected.json.
Any drift — codes, locations, messages, ordering, or the JSON shape
itself — fails the check; the goldens are the compatibility contract
for tooling that consumes the diagnostics. The exit code is also
checked against the contract: 2 iff the report contains an
error-severity diagnostic, else 0.

The demo query (examples/lint_demo.xq) is additionally required to
fire each of the five XQL rules exactly once, so the README's claim
stays true and a rule silently dying in refactor shows up here.

Only the standard library is used.
"""

import argparse
import json
import pathlib
import subprocess
import sys


def run_lint(runner, query_path):
    proc = subprocess.run(
        [runner, "--lint=json", str(query_path)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    return proc.returncode, proc.stdout.decode("utf-8", "replace")


def check_exit_code(name, code, output, errors):
    try:
        report = json.loads(output)
    except json.JSONDecodeError as e:
        errors.append(f"{name}: output is not valid JSON ({e})")
        return
    has_error = any(d.get("severity") == "error"
                    for d in report.get("diagnostics", []))
    expected = 2 if has_error else 0
    if code != expected:
        errors.append(f"{name}: exit code {code}, expected {expected} "
                      f"(has_error={has_error})")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--runner", default="build/examples/xqb_run")
    parser.add_argument("--corpus", default="tests/analysis/corpus")
    parser.add_argument("--demo", default="examples/lint_demo.xq")
    args = parser.parse_args()

    corpus = pathlib.Path(args.corpus)
    queries = sorted(corpus.glob("*.xq"))
    if not queries:
        sys.exit(f"error: no .xq files in {corpus}")

    errors = []
    for query in queries:
        expected_path = query.with_suffix(".expected.json")
        if not expected_path.exists():
            errors.append(f"{query.name}: missing {expected_path.name}")
            continue
        expected = expected_path.read_text()
        code, actual = run_lint(args.runner, query)
        if actual != expected:
            errors.append(
                f"{query.name}: lint output drifted from "
                f"{expected_path.name}\n--- expected\n{expected}"
                f"--- actual\n{actual}")
        check_exit_code(query.name, code, actual, errors)

    demo = pathlib.Path(args.demo)
    if demo.exists():
        code, output = run_lint(args.runner, demo)
        check_exit_code(demo.name, code, output, errors)
        try:
            diags = json.loads(output).get("diagnostics", [])
            counts = {}
            for d in diags:
                counts[d.get("code")] = counts.get(d.get("code"), 0) + 1
            for rule in ("XQL001", "XQL002", "XQL003", "XQL004", "XQL005"):
                if counts.get(rule, 0) != 1:
                    errors.append(f"{demo.name}: expected exactly one "
                                  f"{rule}, got {counts.get(rule, 0)}")
        except json.JSONDecodeError:
            pass  # already reported by check_exit_code
    else:
        errors.append(f"demo query {demo} not found")

    if errors:
        print(f"FAIL: {len(errors)} lint-output problem(s)")
        for e in errors:
            print(f"  {e}")
        sys.exit(1)
    print(f"OK: {len(queries)} corpus queries + demo match the goldens")


if __name__ == "__main__":
    main()
