#!/usr/bin/env python3
"""Chaos driver: sweep every fail point against the chaos query corpus.

For each registered fail point (enumerated live from
`xqb_run --list-failpoints`), each corpus query, each seed, and each
thread count, runs

    xqb_run --failpoints <point>=prob:0.5:<seed> --threads <t> \
            --doc d=tests/chaos/corpus/data.xml <query.xq>

and asserts the process exits through the documented exit-code contract
(0-10; see docs/ROBUSTNESS.md) — never a signal, never an undocumented
code. Deterministic policies (nth:1) additionally assert run-to-run and
cross-thread-count reproducibility of the full error identity (exit
code + stderr); pool.* points are exempt from the cross-thread check
because their edges only exist in parallel regions. Durability points
(wal.*, checkpoint.*, recovery.*) run with a fresh --data-dir per case
so their sites are actually on the execution path; a run that exceeds
--timeout is killed and reported as a HANG. The sweep never stops at
the first failure: every case runs, and a per-failpoint outcome table
is printed at the end.

Exit status: 0 when every combination behaved, 1 on any violation
(each printed with a copy-pasteable repro command), 2 on usage errors.
"""

import argparse
import collections
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS_DIR = os.path.join(REPO_ROOT, "tests", "chaos", "corpus")

# The documented xqb_run exit-code contract (examples/xqb_run.cpp).
DOCUMENTED_EXIT_CODES = set(range(0, 11))

# Points whose sites only execute with the durable store open.
DURABILITY_PREFIXES = ("wal.", "checkpoint.", "recovery.")


def find_binary(build_dir):
    for candidate in (
        os.path.join(build_dir, "examples", "xqb_run"),
        os.path.join(build_dir, "xqb_run"),
    ):
        if os.path.isfile(candidate) and os.access(candidate, os.X_OK):
            return candidate
    sys.exit(
        f"error: xqb_run not found under {build_dir!r}; build it first "
        "(cmake --build <build-dir> --target xqb_run)"
    )


def list_failpoints(binary):
    proc = subprocess.run(
        [binary, "--list-failpoints"], capture_output=True, text=True
    )
    if proc.returncode != 0:
        sys.exit(
            "error: --list-failpoints failed "
            f"(exit {proc.returncode}): {proc.stderr.strip()}"
        )
    points = []
    compiled_out = False
    for line in proc.stdout.splitlines():
        if line.startswith("("):
            compiled_out = True
            continue
        fields = line.split()
        if fields:
            points.append(fields[0])
    return points, compiled_out


def run_one(binary, query, spec, threads, timeout, durable):
    """One swept case. Durability points get a fresh --data-dir (their
    sites are skipped entirely without one); the directory is scrubbed
    afterwards and its path normalized out of stderr so run-to-run
    identity comparisons see stable text. Every run arms the flight
    recorder (--flight-dump): xqb_run writes the dump silently, so
    stderr identity is unaffected, and the caller decides whether to
    keep the file (failing case) or discard it (clean case)."""
    data_dir = None
    flight_fd, flight = tempfile.mkstemp(
        prefix="xqb_chaos_flight_", suffix=".jsonl"
    )
    os.close(flight_fd)
    cmd = [
        binary,
        "--flight-dump",
        flight,
        "--failpoints",
        spec,
        "--threads",
        str(threads),
        "--doc",
        "d=" + os.path.join(CORPUS_DIR, "data.xml"),
        query,
    ]
    if durable:
        data_dir = tempfile.mkdtemp(prefix="xqb_chaos_")
        cmd[1:1] = ["--data-dir", data_dir]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=timeout
        )
        stderr = proc.stderr
        if data_dir:
            stderr = stderr.replace(data_dir, "<DATA_DIR>")
        return proc.returncode, stderr, cmd, flight
    except subprocess.TimeoutExpired:
        return None, "", cmd, flight  # hung; subprocess.run killed it
    finally:
        if data_dir:
            shutil.rmtree(data_dir, ignore_errors=True)


def discard_flight(flight):
    try:
        os.unlink(flight)
    except OSError:
        pass


def repro(cmd):
    return " ".join(cmd)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument(
        "--seeds",
        type=int,
        default=5,
        help="probability-policy seeds per (point, query) pair",
    )
    parser.add_argument(
        "--threads",
        default="1,8",
        help="comma-separated thread counts to sweep (default: 1,8)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-run hang timeout in seconds",
    )
    args = parser.parse_args()

    try:
        thread_counts = [int(t) for t in args.threads.split(",") if t]
    except ValueError:
        sys.exit(f"error: bad --threads value {args.threads!r}")
    if args.seeds < 1:
        sys.exit("error: --seeds must be >= 1")

    binary = find_binary(args.build_dir)
    points, compiled_out = list_failpoints(binary)
    if compiled_out:
        print(
            "fail points are compiled out in this build "
            "(-DXQB_FAILPOINTS=OFF); nothing to chaos-test"
        )
        return 0
    if not points:
        sys.exit("error: --list-failpoints reported an empty catalog")

    queries = sorted(
        os.path.join(CORPUS_DIR, f)
        for f in os.listdir(CORPUS_DIR)
        if f.endswith(".xq")
    )
    if not queries:
        sys.exit(f"error: no .xq corpus files in {CORPUS_DIR}")

    failures = []
    runs = 0
    # point -> outcome label -> count, for the final summary table.
    outcome_table = collections.defaultdict(collections.Counter)
    current_point = None

    def check(rc, stderr, cmd, what, flight=None):
        nonlocal runs
        runs += 1
        before = len(failures)
        if rc is None:
            outcome_table[current_point]["HANG"] += 1
            failures.append(f"HANG (> {args.timeout}s): {repro(cmd)}")
        elif rc < 0:
            outcome_table[current_point][f"SIG{-rc}"] += 1
            failures.append(
                f"SIGNAL {-rc} ({what}): {repro(cmd)}\n  stderr: "
                f"{stderr.strip()}"
            )
        elif rc not in DOCUMENTED_EXIT_CODES:
            outcome_table[current_point][f"exit {rc}?"] += 1
            failures.append(
                f"UNDOCUMENTED EXIT {rc} ({what}): {repro(cmd)}\n"
                f"  stderr: {stderr.strip()}"
            )
        else:
            outcome_table[current_point][f"exit {rc}"] += 1
        # A failing case keeps its flight-recorder dump (the engine's
        # last kCapacity requests) for post-mortem; clean cases — and
        # failures where no dump trigger fired — discard the file.
        if flight is not None:
            dumped = os.path.exists(flight) and os.path.getsize(flight) > 0
            if len(failures) > before and dumped:
                failures[-1] += f"\n  flight recorder dump: {flight}"
            else:
                discard_flight(flight)

    for point in points:
        current_point = point
        durable = point.startswith(DURABILITY_PREFIXES)
        for query in queries:
            # Probability sweep: seeded, so every failure reproduces.
            for seed in range(args.seeds):
                spec = f"{point}=prob:0.5:{seed}"
                for threads in thread_counts:
                    rc, err, cmd, flight = run_one(
                        binary, query, spec, threads, args.timeout,
                        durable
                    )
                    check(rc, err, cmd, "prob sweep", flight)

            # Deterministic first-hit: identical identity across repeat
            # runs and (for non-pool points) across thread counts.
            spec = f"{point}=nth:1"
            outcomes = {}
            for threads in thread_counts:
                rc1, err1, cmd, flight1 = run_one(
                    binary, query, spec, threads, args.timeout, durable
                )
                check(rc1, err1, cmd, "nth run 1", flight1)
                rc2, err2, _, flight2 = run_one(
                    binary, query, spec, threads, args.timeout, durable
                )
                check(rc2, err2, cmd, "nth run 2", flight2)
                if (rc1, err1) != (rc2, err2):
                    failures.append(
                        f"NONDETERMINISTIC across repeat runs: "
                        f"{repro(cmd)}\n  run1: exit={rc1} "
                        f"{err1.strip()!r}\n  run2: exit={rc2} "
                        f"{err2.strip()!r}"
                    )
                outcomes[threads] = (rc1, err1, cmd)
            if not point.startswith("pool.") and len(outcomes) > 1:
                baseline = None
                for threads, (rc, err, cmd) in sorted(outcomes.items()):
                    if rc is None:
                        continue
                    if baseline is None:
                        baseline = (threads, rc, err)
                    elif (rc, err) != baseline[1:]:
                        failures.append(
                            "ERROR IDENTITY DEPENDS ON THREAD COUNT "
                            f"for {point}: threads={baseline[0]} gives "
                            f"exit={baseline[1]} {baseline[2].strip()!r} "
                            f"but threads={threads} gives exit={rc} "
                            f"{err.strip()!r}\n  repro: {repro(cmd)}"
                        )

    print(f"chaos sweep: {runs} runs, {len(points)} fail points, "
          f"{len(queries)} queries, {args.seeds} seeds, "
          f"threads={thread_counts}")
    print("\nper-failpoint outcomes:")
    width = max(len(p) for p in points)
    for point in points:
        tally = outcome_table[point]
        cells = ", ".join(
            f"{label} x{count}"
            for label, count in sorted(tally.items())
        )
        print(f"  {point:<{width}}  {cells or '(no runs)'}")
    if failures:
        print(f"\n{len(failures)} FAILURE(S):", file=sys.stderr)
        for failure in failures:
            print("  " + failure.replace("\n", "\n  "), file=sys.stderr)
        return 1
    print("all clear: every injected fault surfaced as a documented, "
          "deterministic exit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
