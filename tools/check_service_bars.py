#!/usr/bin/env python3
"""Checks the query-service acceptance bars from a merged benchmark
report (tools/run_benchmarks.py output):

  1. Plan cache: a warm QueryCache lookup (BM_PrepareWarm) costs less
     than 5% of a cold Engine::Prepare (BM_PrepareCold). Checked on
     every machine — it is a single-threaded ratio.
  2. Read scaling: BM_ServiceReadThroughput at 8 client threads moves
     at least 3x the items/second of 1 client. Only *gated* on
     machines with >= 4 CPUs (the report's context.num_cpus, falling
     back to os.cpu_count()); below that the ratio is physically
     unreachable and is reported instead.

Usage:
  tools/check_service_bars.py --report BENCH_ci.json \
      [--warm-fraction 0.05] [--scaling 3.0] [--min-cpus 4]

Only the standard library is used.
"""

import argparse
import json
import os
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def best(report, run_name, key):
    """The best observation for `run_name`: min over repetitions for
    real_time (noise is one-sided), max for items_per_second."""
    values = []
    for entry in report.get("benchmarks", []):
        if entry.get("run_type") == "aggregate" or \
                entry.get("error_occurred"):
            continue
        if entry.get("run_name", entry.get("name")) != run_name:
            continue
        if key == "real_time_ns":
            values.append(entry["real_time"] *
                          UNIT_NS[entry.get("time_unit", "ns")])
        elif key in entry:
            values.append(entry[key])
    if not values:
        sys.exit(f"error: no '{run_name}' entries in the report; did "
                 "bench_query_cache / bench_service_throughput run?")
    return min(values) if key == "real_time_ns" else max(values)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--report", default="BENCH_ci.json")
    parser.add_argument("--warm-fraction", type=float, default=0.05)
    parser.add_argument("--scaling", type=float, default=3.0)
    parser.add_argument("--min-cpus", type=int, default=4)
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read benchmark report "
                 f"{args.report!r}: {e}")

    failures = []

    cold_ns = best(report, "BM_PrepareCold", "real_time_ns")
    warm_ns = best(report, "BM_PrepareWarm", "real_time_ns")
    fraction = warm_ns / cold_ns if cold_ns > 0 else float("inf")
    print(f"[service] warm lookup {warm_ns:.0f}ns vs cold prepare "
          f"{cold_ns:.0f}ns -> {100 * fraction:.2f}% "
          f"(bar: < {100 * args.warm_fraction:.0f}%)")
    if fraction >= args.warm_fraction:
        failures.append(
            f"warm plan-cache lookup is {100 * fraction:.1f}% of a "
            f"cold prepare (bar: {100 * args.warm_fraction:.0f}%)")

    one = best(report,
               "BM_ServiceReadThroughput/real_time/threads:1",
               "items_per_second")
    eight = best(report,
                 "BM_ServiceReadThroughput/real_time/threads:8",
                 "items_per_second")
    ratio = eight / one if one > 0 else float("inf")
    cpus = report.get("context", {}).get("num_cpus") or \
        os.cpu_count() or 1
    print(f"[service] read throughput: {one:,.0f} items/s at 1 "
          f"client, {eight:,.0f} at 8 -> {ratio:.2f}x "
          f"(bar: >= {args.scaling:.1f}x on >= {args.min_cpus} CPUs; "
          f"this machine: {cpus})")
    if cpus >= args.min_cpus and ratio < args.scaling:
        failures.append(
            f"8-client read throughput is only {ratio:.2f}x the "
            f"1-client rate on a {cpus}-CPU machine "
            f"(bar: {args.scaling:.1f}x)")
    elif cpus < args.min_cpus:
        print(f"[service] scaling bar not gated below "
              f"{args.min_cpus} CPUs (recorded, not enforced)")

    if failures:
        for failure in failures:
            print(f"error: {failure}")
        sys.exit(1)
    print("[service] acceptance bars hold")


if __name__ == "__main__":
    main()
